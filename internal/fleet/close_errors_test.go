package fleet_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"milr/internal/fleet"
	"milr/internal/serve"
)

// Regression tests for the admission/shutdown contracts the HTTP
// gateway maps onto status codes: typed queue-full rejections (429 with
// model and cap in the body), the unknown-model sentinel (404), the
// model index it validates payload shapes against, and Close
// idempotency under a signal handler racing a deferred Close.

// TestFleetQueueFullErrorTyped pins the fleet surface's rejection
// shape: errors.Is must match the shared sentinel and errors.As must
// recover which model refused the request at what cap. Before
// QueueFullError existed both serving surfaces wrapped the sentinel in
// structurally different fmt.Errorf strings, so the As half of this
// test fails on the pre-fix code.
func TestFleetQueueFullErrorTyped(t *testing.T) {
	m, xs, _ := tinyModel(t, 1, 3)
	br := newBrake()
	f := fleet.New(fleet.Config{Workers: 1, BatchSize: 1})
	if err := f.Register("tiny", m, fleet.ModelConfig{QueueCap: 1, Gate: br.gate}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	send := func(i int) {
		defer wg.Done()
		if _, err := f.Predict(ctx, "tiny", xs[i]); err != nil {
			t.Errorf("admitted predict %d failed: %v", i, err)
		}
	}
	// Request 0 parks inside the gate (entered implies the dispatcher
	// already drained it from the queue), request 1 then occupies the
	// queue's single slot; request 2 must be refused. Admissions are
	// sequenced so the cap rejection is deterministic.
	wg.Add(1)
	go send(0)
	<-br.entered
	wg.Add(1)
	go send(1)
	waitStat(t, f, "admitted", func(st fleet.Stats) int64 { return st.Admitted }, 2)
	_, err := f.Predict(ctx, "tiny", xs[2])
	if err == nil {
		t.Fatal("predict into a full model queue succeeded, want rejection")
	}
	if !errors.Is(err, fleet.ErrQueueFull) {
		t.Errorf("rejection %v is not errors.Is-matchable against ErrQueueFull", err)
	}
	var qf *serve.QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("rejection %v is not a *QueueFullError", err)
	}
	if qf.Surface != "fleet" || qf.Model != "tiny" || qf.Cap != 1 {
		t.Errorf("rejection detail = %+v, want Surface=fleet Model=tiny Cap=1", qf)
	}
	// PredictBatch rejections carry the same typed error, so the gateway
	// maps the batch route with the same errors.As.
	if _, err := f.PredictBatch(ctx, "tiny", xs[2:3]); !errors.As(err, &qf) {
		t.Errorf("PredictBatch rejection %v is not a *QueueFullError", err)
	}
	if st := f.Stats(); st.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", st.Rejected)
	}
	br.release <- struct{}{}
	br.release <- struct{}{}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetUnknownModelSentinel pins the 404 mapping: routing to a
// never-registered model must be errors.Is-matchable against
// ErrUnknownModel on both predict surfaces, without string matching.
func TestFleetUnknownModelSentinel(t *testing.T) {
	m, xs, _ := tinyModel(t, 1, 1)
	f := fleet.New(fleet.Config{Workers: 1, BatchSize: 1})
	defer f.Close()
	if err := f.Register("tiny", m, fleet.ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := f.Predict(ctx, "nope", xs[0]); !errors.Is(err, fleet.ErrUnknownModel) {
		t.Errorf("Predict(unknown) = %v, want ErrUnknownModel", err)
	}
	if _, err := f.PredictBatch(ctx, "nope", xs); !errors.Is(err, fleet.ErrUnknownModel) {
		t.Errorf("PredictBatch(unknown) = %v, want ErrUnknownModel", err)
	}
}

// TestFleetModels pins the model index: registration order, input
// shapes, resolved queue caps (model override beats fleet default),
// weights, and the Guarded flag tracking the Scrub hook.
func TestFleetModels(t *testing.T) {
	mA, _, _ := tinyModel(t, 1, 1)
	mB, _, _ := tinyModel(t, 2, 1)
	f := fleet.New(fleet.Config{Workers: 1, BatchSize: 2, QueueCap: 8})
	defer f.Close()
	if err := f.Register("a", mA, fleet.ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	scrub := func(context.Context) (fleet.ScrubResult, error) { return fleet.ScrubResult{Recovered: true}, nil }
	if err := f.Register("b", mB, fleet.ModelConfig{Weight: 3, QueueCap: 2, Scrub: scrub}); err != nil {
		t.Fatal(err)
	}
	infos := f.Models()
	if len(infos) != 2 {
		t.Fatalf("Models() returned %d entries, want 2", len(infos))
	}
	a, b := infos[0], infos[1]
	if a.Name != "a" || b.Name != "b" {
		t.Errorf("Models() order = [%s %s], want registration order [a b]", a.Name, b.Name)
	}
	if !a.InShape.Equal(mA.InShape()) {
		t.Errorf("model a InShape = %v, want %v", a.InShape, mA.InShape())
	}
	if a.Weight != 1 || a.QueueCap != 8 || a.Guarded {
		t.Errorf("model a = %+v, want Weight=1 QueueCap=8 (fleet default) Guarded=false", a)
	}
	if b.Weight != 3 || b.QueueCap != 2 || !b.Guarded {
		t.Errorf("model b = %+v, want Weight=3 QueueCap=2 (override) Guarded=true", b)
	}
}

// TestFleetCloseIdempotentConcurrent is the double-Close race
// regression: a signal handler's Close racing a deferred Close, a
// running guard, and a swarm of in-flight Predicts must drain exactly
// once, return the first call's result from every call, and refuse
// admissions arriving after the close — all race-detector clean.
func TestFleetCloseIdempotentConcurrent(t *testing.T) {
	m, xs, want := tinyModel(t, 1, 16)
	f := fleet.New(fleet.Config{Workers: 2, BatchSize: 4, MaxDelay: time.Millisecond})
	scrub := func(ctx context.Context) (fleet.ScrubResult, error) { return fleet.ScrubResult{Recovered: true}, nil }
	if err := f.Register("tiny", m, fleet.ModelConfig{Scrub: scrub}); err != nil {
		t.Fatal(err)
	}
	if err := f.StartGuard(context.Background(), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := range xs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := f.Predict(ctx, "tiny", xs[i])
			switch {
			case errors.Is(err, fleet.ErrClosed):
				// Raced the close and lost admission — the documented
				// outcome for requests arriving after shutdown began.
			case err != nil:
				t.Errorf("predict %d: %v", i, err)
			case got != want[i]:
				t.Errorf("predict %d: served %d, direct %d (admitted requests must be drained, not dropped)", i, got, want[i])
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := f.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Errorf("Close after shutdown: %v", err)
	}
	if _, err := f.Predict(ctx, "tiny", xs[0]); !errors.Is(err, fleet.ErrClosed) {
		t.Errorf("predict after close returned %v, want ErrClosed", err)
	}
}
