package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"milr/internal/core"
	"milr/internal/dataset"
	"milr/internal/ecc"
	"milr/internal/nn"
	"milr/internal/tensor"
)

// NetKind selects one of the paper's evaluation networks (or the test
// suite's tiny network).
type NetKind int

const (
	// MNIST is the Table I network on the MNIST-like synthetic dataset.
	MNIST NetKind = iota + 1
	// CIFARSmall is the Table II network on the CIFAR-like dataset.
	CIFARSmall
	// CIFARLarge is the Table III network on the CIFAR-like dataset,
	// with the paper's all-convs-partial cost policy.
	CIFARLarge
	// Tiny is the miniature network used by tests and quick benches.
	Tiny
)

// String implements fmt.Stringer.
func (k NetKind) String() string {
	switch k {
	case MNIST:
		return "MNIST"
	case CIFARSmall:
		return "CIFAR-10 Small"
	case CIFARLarge:
		return "CIFAR-10 Large"
	case Tiny:
		return "Tiny"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// Config scales the experiments.
type Config struct {
	// Runs per error-rate point (paper: 40).
	Runs int
	// TestSamples evaluated per accuracy measurement (paper: 10,000).
	TestSamples int
	// TrainSamples and Epochs control synthetic training.
	TrainSamples int
	Epochs       int
	// Seed drives every deterministic choice.
	Seed uint64
	// Workers bounds the worker pools at every level of the stack:
	// fault-injection campaigns shard runs across environment clones,
	// the MILR engine scrubs/solves concurrently, and the GEMM forward
	// passes fan out. 0 keeps everything serial, n > 0 uses at most n
	// workers per pool, negative resolves to GOMAXPROCS. Results are
	// bit-identical at every setting: campaign cells derive their PRNG
	// streams from the master seed alone (see runSeed), never from
	// worker identity or scheduling order.
	Workers int
	// SequentialRecovery runs the engine's one-layer-at-a-time
	// reference recovery pipeline instead of the default batched
	// segment sweeps. Results are bit-identical either way (the
	// engine's equivalence tests pin this), so the knob exists purely
	// for wall-clock A/B comparison of the two pipelines
	// (cmd/milr-bench -seqrecovery, BenchmarkBatchedRecovery).
	SequentialRecovery bool
	// Verbose, when non-nil, receives progress lines.
	Verbose io.Writer
}

// DefaultConfig returns the scaled-down single-core configuration.
func DefaultConfig(seed uint64) Config {
	return Config{Runs: 5, TestSamples: 100, TrainSamples: 300, Epochs: 2, Seed: seed}
}

// FullConfig returns paper-scale settings (expect hours on one core).
func FullConfig(seed uint64) Config {
	return Config{Runs: 40, TestSamples: 2000, TrainSamples: 2000, Epochs: 5, Seed: seed}
}

func (c Config) validate() error {
	if c.Runs <= 0 || c.TestSamples <= 0 || c.TrainSamples <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("bench: invalid config %+v", c)
	}
	return nil
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, format+"\n", args...)
	}
}

// Env is a trained, MILR-protected network plus everything an experiment
// needs: ECC protection of the clean weights, the test set, the baseline
// accuracy, and the clean snapshot to restore between runs.
type Env struct {
	Kind      NetKind
	Model     *nn.Model
	Protector *core.Protector
	ECC       *ecc.Protector
	Test      []nn.Sample
	BaseAcc   float64
	Config    Config

	clean map[int]*tensor.Tensor
}

// BuildEnv constructs, trains, and protects a network.
func BuildEnv(kind NetKind, cfg Config) (*Env, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, opts, data, err := buildNet(kind, cfg)
	if err != nil {
		return nil, err
	}
	model.InitWeights(cfg.Seed)
	train, test := data.train, data.test
	cfg.logf("[%s] training on %d synthetic samples, %d epochs...", kind, len(train), cfg.Epochs)
	start := time.Now()
	loss, err := nn.Train(model, train, nn.TrainConfig{
		Epochs:    cfg.Epochs,
		BatchSize: 16,
		LR:        0.03,
		Momentum:  0.9,
		Seed:      cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: train %v: %w", kind, err)
	}
	cfg.logf("[%s] trained in %v (final loss %.4f)", kind, time.Since(start).Round(time.Millisecond), loss)
	acc, err := nn.Evaluate(model, test)
	if err != nil {
		return nil, err
	}
	cfg.logf("[%s] baseline accuracy: %.1f%%", kind, 100*acc)
	pr, err := newProtector(model, opts, cfg, kind)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Kind:      kind,
		Model:     model,
		Protector: pr,
		ECC:       newECC(model),
		Test:      test,
		BaseAcc:   acc,
		Config:    cfg,
		clean:     model.Snapshot(),
	}
	return env, nil
}

func newProtector(model *nn.Model, opts core.Options, cfg Config, kind NetKind) (*core.Protector, error) {
	start := time.Now()
	pr, err := core.NewProtector(model, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: protect %v: %w", kind, err)
	}
	cfg.logf("[%s] MILR initialization: %v", kind, time.Since(start).Round(time.Millisecond))
	return pr, nil
}

func newECC(model *nn.Model) *ecc.Protector {
	return ecc.NewProtector(paramWords(model))
}

type netData struct {
	train, test []nn.Sample
}

// buildModel constructs the (untrained) network and MILR options for a
// kind, applying the configuration's worker counts to both.
func buildModel(kind NetKind, cfg Config) (*nn.Model, core.Options, error) {
	opts := core.DefaultOptions(cfg.Seed)
	opts.Workers = cfg.Workers
	opts.SequentialRecovery = cfg.SequentialRecovery
	var model *nn.Model
	var err error
	switch kind {
	case MNIST:
		model, err = nn.NewMNISTNet()
	case CIFARSmall:
		model, err = nn.NewCIFARSmallNet()
	case CIFARLarge:
		model, err = nn.NewCIFARLargeNet()
		// The paper's cost policy: every conv layer of the large network
		// uses partial recoverability (§V-D).
		opts.MaxFullSolveTaps = 1
	case Tiny:
		model, err = nn.NewTinyNet()
	default:
		return nil, opts, fmt.Errorf("bench: unknown net kind %d", kind)
	}
	if err != nil {
		return nil, opts, err
	}
	model.SetWorkers(cfg.Workers)
	return model, opts, nil
}

func buildNet(kind NetKind, cfg Config) (*nn.Model, core.Options, *netData, error) {
	model, opts, err := buildModel(kind, cfg)
	if err != nil {
		return nil, opts, nil, err
	}
	var dcfg dataset.Config
	switch kind {
	case MNIST:
		dcfg = dataset.MNISTLike(cfg.Seed)
	case CIFARSmall, CIFARLarge:
		dcfg = dataset.CIFARLike(cfg.Seed)
	case Tiny:
		dcfg = dataset.Config{Height: 12, Width: 12, Channels: 1, Classes: 4,
			NoiseStd: 0.15, MaxShift: 1, Seed: cfg.Seed}
	}
	ds, err := dataset.New(dcfg)
	if err != nil {
		return nil, opts, nil, err
	}
	train, test := ds.TrainTest(cfg.TrainSamples, cfg.TestSamples)
	return model, opts, &netData{train: train, test: test}, nil
}

// Reset restores the clean weights and protection state between
// injection runs.
func (e *Env) Reset() error {
	if err := e.Model.Restore(e.clean); err != nil {
		return err
	}
	e.Protector.ResetCRC()
	return nil
}

// NormalizedAccuracy evaluates the current (possibly corrupted or
// recovered) network and divides by the error-free baseline, the paper's
// y-axis on every accuracy figure.
func (e *Env) NormalizedAccuracy() (float64, error) {
	acc, err := nn.Evaluate(e.Model, e.Test)
	if err != nil {
		return 0, err
	}
	if e.BaseAcc == 0 {
		return 0, fmt.Errorf("bench: zero baseline accuracy")
	}
	return acc / e.BaseAcc, nil
}

// ScrubECC runs SECDED over the live weights, repairing single-bit
// errors in place.
func (e *Env) ScrubECC() (ecc.Stats, error) {
	words := paramWords(e.Model)
	stats, err := e.ECC.Scrub(words)
	if err != nil {
		return stats, err
	}
	writeWordsBack(e.Model, words)
	return stats, nil
}

// paramWords serializes all parameters as 32-bit words in layer order.
func paramWords(m *nn.Model) []uint32 {
	words := make([]uint32, 0, m.ParamCount())
	for _, l := range m.Layers() {
		if p, ok := l.(nn.Parameterized); ok {
			for _, v := range p.Params().Data() {
				words = append(words, math.Float32bits(v))
			}
		}
	}
	return words
}

func writeWordsBack(m *nn.Model, words []uint32) {
	i := 0
	for _, l := range m.Layers() {
		if p, ok := l.(nn.Parameterized); ok {
			d := p.Params().Data()
			for j := range d {
				d[j] = math.Float32frombits(words[i])
				i++
			}
		}
	}
}

// runSeed derives a per-run injection seed.
func runSeed(base uint64, rateIdx, run int) uint64 {
	var buf [24]byte
	binary.LittleEndian.PutUint64(buf[0:], base)
	binary.LittleEndian.PutUint64(buf[8:], uint64(rateIdx)+1)
	binary.LittleEndian.PutUint64(buf[16:], uint64(run)+1)
	h := uint64(1469598103934665603)
	for _, b := range buf {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}
