package bench

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"milr/internal/availability"
	"milr/internal/core"
	"milr/internal/faults"
	"milr/internal/nn"
	"milr/internal/tensor"
)

// Scheme is a protection strategy under test.
type Scheme int

const (
	// NoRecovery measures the raw effect of the injected errors.
	NoRecovery Scheme = iota + 1
	// ECCOnly scrubs with SECDED.
	ECCOnly
	// MILROnly self-heals with MILR.
	MILROnly
	// ECCPlusMILR scrubs first, then self-heals — the paper's combined
	// configuration.
	ECCPlusMILR
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case NoRecovery:
		return "No recovery"
	case ECCOnly:
		return "ECC"
	case MILROnly:
		return "MILR"
	case ECCPlusMILR:
		return "ECC + MILR"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// BoxStats summarizes the paper's box plots: median, quartiles, whiskers.
type BoxStats struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// ComputeBoxStats builds the summary from raw samples.
func ComputeBoxStats(vals []float64) BoxStats {
	if len(vals) == 0 {
		return BoxStats{}
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	q := func(f float64) float64 {
		pos := f * float64(len(s)-1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(s) {
			return s[len(s)-1]
		}
		frac := pos - float64(lo)
		return s[lo]*(1-frac) + s[hi]*frac
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return BoxStats{
		Min: s[0], Q1: q(0.25), Median: q(0.5), Q3: q(0.75), Max: s[len(s)-1],
		Mean: sum / float64(len(s)), N: len(s),
	}
}

// SweepPoint is one error rate's outcome under one scheme.
type SweepPoint struct {
	Rate   float64
	Scheme Scheme
	Stats  BoxStats
	// DetectedAll counts runs where every layer carrying errors was
	// flagged (the paper reports this detection-coverage rate, §V-B).
	DetectedAll int
}

// SweepResult is a whole figure: rates × schemes.
type SweepResult struct {
	Name   string
	Points []SweepPoint
}

// PaperRBERRates are the x axes of Figures 5, 7 and 9.
var PaperRBERRates = []float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3}

// PaperWholeWeightRates are the x axes of Figures 6, 8 and 10.
var PaperWholeWeightRates = []float64{1e-7, 5e-7, 1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3}

// RBERSweep reproduces the random bit-flip figures: for each error rate
// and scheme, inject, optionally repair, and measure normalized
// accuracy over cfg.Runs runs.
func RBERSweep(env *Env, rates []float64, schemes []Scheme) (*SweepResult, error) {
	return sweep(env, rates, schemes, func(e *Env, inj *faults.Injector, rate float64) error {
		inj.BitFlips(e.Model, rate)
		return nil
	}, "RBER")
}

// WholeWeightSweep reproduces the whole-weight error figures (every bit
// of a hit weight flipped) — the plaintext-space error model where ECC
// is not applicable.
func WholeWeightSweep(env *Env, rates []float64, schemes []Scheme) (*SweepResult, error) {
	return sweep(env, rates, schemes, func(e *Env, inj *faults.Injector, rate float64) error {
		inj.WholeWeights(e.Model, rate)
		return nil
	}, "whole-weight")
}

// CiphertextSweep injects bit flips into the AES-XTS ciphertext of the
// weights instead of the plaintext: the PSEC scenario of §I where each
// flip garbles a 16-byte block.
func CiphertextSweep(env *Env, rates []float64, schemes []Scheme) (*SweepResult, error) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(0x9e ^ i*31)
	}
	return sweep(env, rates, schemes, func(e *Env, inj *faults.Injector, rate float64) error {
		_, err := inj.CiphertextBitFlips(e.Model, rate, key)
		return err
	}, "ciphertext")
}

// sweep runs the rates × schemes × runs campaign grid. Each cell is
// independent — reset, inject with a seed derived only from the cell's
// (rate, run) coordinates, repair per the scheme, measure — so cells
// shard across environment clones (Config.Workers) with bit-identical
// results at every worker count.
// The inject callback receives the cell's environment — never capture
// the campaign's master env in an injector, or sharded cells would
// corrupt the master while measuring their clone.
func sweep(env *Env, rates []float64, schemes []Scheme, inject func(*Env, *faults.Injector, float64) error, name string) (*SweepResult, error) {
	type cellResult struct {
		acc     float64
		covered bool
	}
	nS, runs := len(schemes), env.Config.Runs
	cells := make([]cellResult, len(rates)*nS*runs)
	// One completion counter per (rate, scheme) point: whichever worker
	// finishes a point's last cell logs it, so progress streams during
	// the campaign (serial runs log in exactly the historical order).
	pointDone := make([]atomic.Int32, len(rates)*nS)
	logPoint := func(pi int) {
		ri, si := pi/nS, pi%nS
		vals := make([]float64, runs)
		for run := 0; run < runs; run++ {
			vals[run] = cells[pi*runs+run].acc
		}
		env.Config.logf("  [%s %s] rate %.0e: median %.3f (n=%d)", name, schemes[si], rates[ri],
			ComputeBoxStats(vals).Median, len(vals))
	}
	err := env.forEachCell(len(cells), func(e *Env, idx int) error {
		ri := idx / (nS * runs)
		si := (idx / runs) % nS
		run := idx % runs
		if err := e.Reset(); err != nil {
			return err
		}
		// The injection seed ignores the scheme on purpose: every scheme
		// at a given (rate, run) faces the identical error pattern, as in
		// the paper's controlled comparison.
		inj := faults.New(runSeed(e.Config.Seed, ri, run))
		if err := inject(e, inj, rates[ri]); err != nil {
			return err
		}
		covered, err := applyScheme(e, schemes[si])
		if err != nil {
			return err
		}
		acc, err := e.NormalizedAccuracy()
		if err != nil {
			return err
		}
		cells[idx] = cellResult{acc: acc, covered: covered}
		pi := ri*nS + si
		if int(pointDone[pi].Add(1)) == runs {
			logPoint(pi)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	result := &SweepResult{Name: name}
	for ri, rate := range rates {
		for si, scheme := range schemes {
			vals := make([]float64, 0, runs)
			detectedAll := 0
			for run := 0; run < runs; run++ {
				c := cells[(ri*nS+si)*runs+run]
				vals = append(vals, c.acc)
				if c.covered {
					detectedAll++
				}
			}
			result.Points = append(result.Points, SweepPoint{
				Rate:        rate,
				Scheme:      scheme,
				Stats:       ComputeBoxStats(vals),
				DetectedAll: detectedAll,
			})
		}
	}
	return result, nil
}

// applyScheme repairs the injected errors per the scheme and reports
// whether the repair path believes it covered everything (for MILR: no
// approximate/failed layers).
func applyScheme(env *Env, scheme Scheme) (bool, error) {
	switch scheme {
	case NoRecovery:
		return true, nil
	case ECCOnly:
		stats, err := env.ScrubECC()
		if err != nil {
			return false, err
		}
		return stats.Uncorrectable == 0, nil
	case MILROnly:
		_, rec, err := env.Protector.SelfHeal()
		if err != nil {
			return false, err
		}
		return rec.AllRecovered(), nil
	case ECCPlusMILR:
		if _, err := env.ScrubECC(); err != nil {
			return false, err
		}
		_, rec, err := env.Protector.SelfHeal()
		if err != nil {
			return false, err
		}
		return rec.AllRecovered(), nil
	default:
		return false, fmt.Errorf("bench: unknown scheme %d", scheme)
	}
}

// LayerRow is one row of the whole-layer corruption tables (IV/VI/VIII).
type LayerRow struct {
	Label string
	// NoneAcc is the normalized accuracy with the corrupted layer left
	// in place.
	NoneAcc float64
	// MILRAcc is the normalized accuracy after MILR recovery.
	MILRAcc float64
	// Partial marks the paper's "N/A — convolution partial recoverable"
	// rows (our measured best-effort accuracy is still reported).
	Partial bool
}

// WholeLayerTable corrupts each parameterized layer in turn (every value
// replaced with a fresh random one), measures the damage, self-heals,
// and measures recovery. The per-layer trials are independent cells and
// shard across environment clones (Config.Workers).
func WholeLayerTable(env *Env) ([]LayerRow, error) {
	info := env.Protector.PlanInfo()
	// Label pass first (cheap, order-dependent counters), cells second.
	type layerCell struct {
		li      int
		label   string
		partial bool
	}
	var cellDefs []layerCell
	convN, denseN := -1, -1
	for li, l := range env.Model.Layers() {
		if _, ok := l.(nn.Parameterized); !ok {
			continue
		}
		var label string
		switch l.(type) {
		case *nn.Conv2D:
			convN++
			label = numbered("Conv.", convN)
		case *nn.Dense:
			denseN++
			label = numbered("Dense", denseN)
		case *nn.Bias:
			// The paper labels bias rows after their host layer.
			switch {
			case convN >= 0 && denseN < 0:
				label = numbered("Conv.", convN) + " Bias"
			default:
				label = numbered("Dense", denseN) + " Bias"
			}
		}
		partial := info[li].Role == "conv" && info[li].PartialMode
		cellDefs = append(cellDefs, layerCell{li: li, label: label, partial: partial})
	}
	rows := make([]LayerRow, len(cellDefs))
	err := env.forEachCell(len(cellDefs), func(e *Env, idx int) error {
		cell := cellDefs[idx]
		if err := e.Reset(); err != nil {
			return err
		}
		p := e.Model.Layer(cell.li).(nn.Parameterized)
		faults.New(runSeed(e.Config.Seed, cell.li, 7)).OverwriteLayer(p)
		noneAcc, err := e.NormalizedAccuracy()
		if err != nil {
			return err
		}
		if _, _, err := e.Protector.SelfHeal(); err != nil {
			return err
		}
		milrAcc, err := e.NormalizedAccuracy()
		if err != nil {
			return err
		}
		rows[idx] = LayerRow{Label: cell.label, NoneAcc: noneAcc, MILRAcc: milrAcc, Partial: cell.partial}
		env.Config.logf("  [layer %s] none %.3f, MILR %.3f%s", cell.label, noneAcc, milrAcc,
			map[bool]string{true: " (partial)", false: ""}[cell.partial])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func numbered(base string, n int) string {
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s %d", base, n)
}

// TimingResult reproduces Table X.
type TimingResult struct {
	SinglePrediction time.Duration
	BatchPerSample   time.Duration
	Identification   time.Duration
}

// Timing measures single-prediction latency, amortized per-sample
// prediction cost over the test set through the batch-first path (one
// stacked GEMM per conv/dense layer per nn.DefaultEvalBatch samples),
// and MILR's error-identification (detection) time at the environment's
// configured worker count.
func Timing(env *Env) (*TimingResult, error) {
	if err := env.Reset(); err != nil {
		return nil, err
	}
	x := env.Test[0].X
	// Warm up, then measure single prediction.
	if _, err := env.Model.Forward(x); err != nil {
		return nil, err
	}
	start := time.Now()
	const singleReps = 5
	for i := 0; i < singleReps; i++ {
		if _, err := env.Model.Forward(x); err != nil {
			return nil, err
		}
	}
	single := time.Since(start) / singleReps
	// Amortized batch: the whole test set through ForwardBatch in
	// DefaultEvalBatch-sized chunks.
	xs := make([]*tensor.Tensor, 0, nn.DefaultEvalBatch)
	start = time.Now()
	for lo := 0; lo < len(env.Test); lo += nn.DefaultEvalBatch {
		hi := lo + nn.DefaultEvalBatch
		if hi > len(env.Test) {
			hi = len(env.Test)
		}
		xs = xs[:0]
		for _, s := range env.Test[lo:hi] {
			xs = append(xs, s.X)
		}
		if _, err := env.Model.ForwardBatch(xs); err != nil {
			return nil, err
		}
	}
	batch := time.Since(start) / time.Duration(len(env.Test))
	// Identification = one detection pass.
	start = time.Now()
	if _, err := env.Protector.Detect(); err != nil {
		return nil, err
	}
	ident := time.Since(start)
	return &TimingResult{SinglePrediction: single, BatchPerSample: batch, Identification: ident}, nil
}

// RecoveryPoint is one sample of the Figure 11 curve.
type RecoveryPoint struct {
	Errors  int
	Elapsed time.Duration
}

// RecoveryTimeCurve flips exact error counts and times detection +
// recovery, reproducing the recovery-time-vs-errors relationship of
// Figure 11.
func RecoveryTimeCurve(env *Env, errorCounts []int) ([]RecoveryPoint, error) {
	var out []RecoveryPoint
	for i, n := range errorCounts {
		if err := env.Reset(); err != nil {
			return nil, err
		}
		faults.New(runSeed(env.Config.Seed, i, 13)).FlipExactBits(env.Model, n)
		start := time.Now()
		if _, _, err := env.Protector.SelfHeal(); err != nil {
			return nil, err
		}
		out = append(out, RecoveryPoint{Errors: n, Elapsed: time.Since(start)})
		env.Config.logf("  [recovery-time] %d errors: %v", n, out[len(out)-1].Elapsed)
	}
	if err := env.Reset(); err != nil {
		return nil, err
	}
	return out, nil
}

// AvailabilityCurve builds the Figure 12 trade-off from measured
// timings at the environment's configured worker count (Config.Workers)
// — Eq. 6's Td and Tr are whatever the parallel engine actually
// achieves, not the serial assumption.
func AvailabilityCurve(env *Env, points int) ([]availability.Point, error) {
	return AvailabilityCurveWorkers(env, points, env.Config.Workers)
}

// AvailabilityCurveWorkers is AvailabilityCurve with an explicit worker
// count for the detection/recovery timing measurements: Eq. 6 trades
// downtime (I·Td + Tr) against accuracy, and parallel detection shrinks
// Td, shifting the whole curve toward higher availability at equal
// accuracy. The environment's previous worker configuration is restored
// before returning.
func AvailabilityCurveWorkers(env *Env, points, workers int) ([]availability.Point, error) {
	if workers != env.Config.Workers {
		prev := env.Config.Workers
		env.SetWorkers(workers)
		defer env.SetWorkers(prev)
	}
	timing, err := Timing(env)
	if err != nil {
		return nil, err
	}
	// Worst-case recovery: time one full self-heal after a dense burst.
	rec, err := RecoveryTimeCurve(env, []int{256})
	if err != nil {
		return nil, err
	}
	params := availability.Params{
		DetectSeconds:      timing.Identification.Seconds(),
		RecoverSeconds:     rec[0].Elapsed.Seconds(),
		WeightBits:         float64(env.Model.ParamCount()) * 32,
		DetectionsPerError: 2,
	}
	return availability.Curve(params, points)
}

// Storage returns the network's storage report (Tables V/VII/IX).
func Storage(env *Env) *core.StorageReport {
	return env.Protector.Storage()
}
