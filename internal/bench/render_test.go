package bench

import (
	"strings"
	"testing"
)

func TestSparklineBounds(t *testing.T) {
	cases := []BoxStats{
		{Min: 0, Q1: 0.25, Median: 0.5, Q3: 0.75, Max: 1},
		{Min: 1, Q1: 1, Median: 1, Q3: 1, Max: 1},
		{Min: 0, Q1: 0, Median: 0, Q3: 0, Max: 0},
		{Min: -0.5, Q1: 0.2, Median: 0.6, Q3: 1.1, Max: 2}, // out-of-range clamps
	}
	for i, s := range cases {
		line := sparkline(s)
		if len(line) != 32 { // 30 columns + brackets
			t.Errorf("case %d: sparkline length %d: %q", i, len(line), line)
		}
		if !strings.Contains(line, "|") {
			t.Errorf("case %d: no median marker: %q", i, line)
		}
	}
}

func TestComputeBoxStatsQuartiles(t *testing.T) {
	// 1..9: median 5, q1 3, q3 7.
	vals := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	s := ComputeBoxStats(vals)
	if s.Median != 5 || s.Q1 != 3 || s.Q3 != 7 {
		t.Errorf("stats %+v", s)
	}
	single := ComputeBoxStats([]float64{0.42})
	if single.Min != 0.42 || single.Max != 0.42 || single.Median != 0.42 {
		t.Errorf("single-sample stats %+v", single)
	}
}

func TestNumberedLabels(t *testing.T) {
	if numbered("Conv.", 0) != "Conv." {
		t.Error("first layer should have no suffix")
	}
	if numbered("Conv.", 2) != "Conv. 2" {
		t.Error("suffix wrong")
	}
}
