package bench

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"milr/internal/core"
	"milr/internal/par"
)

// Sharded fault-injection campaigns. Every experiment in this package
// decomposes into independent cells (one injection + repair + accuracy
// measurement); a campaign shards its cells across a bounded pool of
// environment clones. Determinism contract: a cell's PRNG stream
// derives from the master seed and the cell's coordinates alone
// (runSeed), every clone is state-identical to the master, and cells
// reset their environment before running — so campaign results are
// bit-identical for every worker count, which the determinism
// regression tests in shard_test.go pin down.

// SetWorkers retunes every worker pool of a live environment: the
// campaign shards, the MILR engine, and the model's GEMM layers.
func (e *Env) SetWorkers(n int) {
	e.Config.Workers = n
	e.Model.SetWorkers(n)
	e.Protector.SetWorkers(n)
}

// Clone builds an independent environment with identical state: same
// architecture, same clean weights, same protector golden data (copied
// through the Save/Load persistence path, not re-initialized), same ECC
// codes. The test set and clean snapshot are shared read-only. The
// clone is what a campaign worker mutates so shards never contend.
func (e *Env) Clone() (*Env, error) {
	model, _, err := buildModel(e.Kind, e.Config)
	if err != nil {
		return nil, err
	}
	if err := model.Restore(e.clean); err != nil {
		return nil, fmt.Errorf("bench: clone restore: %w", err)
	}
	var buf bytes.Buffer
	if err := e.Protector.Save(&buf); err != nil {
		return nil, fmt.Errorf("bench: clone protector save: %w", err)
	}
	pr, err := core.LoadProtector(&buf, model)
	if err != nil {
		return nil, fmt.Errorf("bench: clone protector load: %w", err)
	}
	return &Env{
		Kind:      e.Kind,
		Model:     model,
		Protector: pr,
		ECC:       newECC(model),
		Test:      e.Test,
		BaseAcc:   e.BaseAcc,
		Config:    e.Config,
		clean:     e.clean,
	}, nil
}

// campaignWorkers resolves Config.Workers for an n-cell campaign:
// 0 stays serial, n > 0 is honored, negative means GOMAXPROCS.
func (e *Env) campaignWorkers(n int) int {
	if e.Config.Workers == 0 {
		return 1
	}
	return par.Resolve(e.Config.Workers, n)
}

// forEachCell runs fn(env, i) for every cell index in [0,n). Serially
// it uses e itself; sharded, worker 0 keeps e and every other worker
// gets a clone, with cells handed out dynamically (campaign cells have
// very uneven cost — a NoRecovery cell is one evaluation, an ECC+MILR
// cell is a scrub plus a self-heal). fn must leave its env resettable;
// cells must not touch shared mutable state except their own result
// slots. The lowest-indexed cell error is returned; e is reset before
// returning so the master environment always ends clean.
func (e *Env) forEachCell(n int, fn func(env *Env, i int) error) error {
	workers := e.campaignWorkers(n)
	var err error
	if workers <= 1 {
		err = e.forEachCellOn(e, n, nil, fn)
	} else {
		envs := make([]*Env, workers)
		envs[0] = e
		for i := 1; i < workers; i++ {
			clone, cerr := e.Clone()
			if cerr != nil {
				return cerr
			}
			envs[i] = clone
		}
		// Campaign shards are the parallel unit: drop every shard's
		// inner pools (engine solvers, GEMM) to serial for the
		// duration, or P shards × P-way solvers × P-way GEMM would
		// oversubscribe P cores instead of dividing the cells.
		for _, env := range envs {
			env.Model.SetWorkers(0)
			env.Protector.SetWorkers(0)
		}
		// One pool item per shard: each drains the shared cell counter
		// on its own env, so an item never runs concurrently with
		// itself and every cell lands in its own result slot.
		var next atomic.Int64
		errs := make([]error, n)
		par.For(workers, workers, func(w int) {
			e.forEachCellOn(envs[w], n, &next, func(env *Env, i int) error {
				errs[i] = fn(env, i)
				return nil
			})
		})
		e.Model.SetWorkers(e.Config.Workers)
		e.Protector.SetWorkers(e.Config.Workers)
		for _, cellErr := range errs {
			if cellErr != nil {
				err = cellErr
				break
			}
		}
	}
	if rerr := e.Reset(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// forEachCellOn drains cells onto one environment: all of [0,n) when
// next is nil (the serial path), otherwise whatever the shared counter
// hands out.
func (e *Env) forEachCellOn(env *Env, n int, next *atomic.Int64, fn func(env *Env, i int) error) error {
	if next == nil {
		for i := 0; i < n; i++ {
			if err := fn(env, i); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			return nil
		}
		if err := fn(env, i); err != nil {
			return err
		}
	}
}
