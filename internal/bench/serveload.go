package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"milr/internal/serve"
	"milr/internal/tensor"
)

// Serving load generation: a closed-loop client swarm against one
// serve.Server, used by cmd/milr-serve and the BenchmarkServer* benches
// to measure coalesced vs. uncoalesced throughput. Closed-loop means
// each client issues its next request only after the previous answer —
// the natural model for the paper's deployment story, and the one under
// which coalescing shows up directly as batch fill.

// ServeLoadResult summarizes one load run.
type ServeLoadResult struct {
	// Clients and PerClient echo the request mix.
	Clients, PerClient int
	// Requests is Clients × PerClient.
	Requests int
	// Elapsed is the wall-clock of the whole swarm.
	Elapsed time.Duration
	// Throughput is Requests / Elapsed, in requests per second.
	Throughput float64
	// Mismatches counts answers that differed from the caller-supplied
	// expected classes. Zero whenever the weights were clean for the
	// whole run (coalescing is bit-identical to direct inference);
	// under live fault injection a degraded answer is counted, not an
	// error.
	Mismatches int64
	// Stats is the server's lifetime snapshot taken after the run (it
	// accumulates across runs that share a server).
	Stats serve.Stats
}

// RunServeLoad drives clients concurrent goroutines, each issuing
// perClient Predict calls round-robin over inputs, and reports
// throughput plus the server's stats snapshot. want, when non-nil,
// must hold the expected class per input (same indexing as inputs);
// answers are then checked and divergences counted as Mismatches.
func RunServeLoad(ctx context.Context, srv *serve.Server, inputs []*tensor.Tensor, want []int, clients, perClient int) (ServeLoadResult, error) {
	if srv == nil {
		return ServeLoadResult{}, fmt.Errorf("bench: serve load needs a server")
	}
	if len(inputs) == 0 {
		return ServeLoadResult{}, fmt.Errorf("bench: serve load needs at least one input")
	}
	if clients < 1 || perClient < 1 {
		return ServeLoadResult{}, fmt.Errorf("bench: serve load needs clients >= 1 and perClient >= 1, got %d/%d", clients, perClient)
	}
	if want != nil && len(want) != len(inputs) {
		return ServeLoadResult{}, fmt.Errorf("bench: %d expected classes for %d inputs", len(want), len(inputs))
	}
	var mismatches atomic.Int64
	errs := make([]error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				idx := (c*perClient + r) % len(inputs)
				got, err := srv.Predict(ctx, inputs[idx])
				if err != nil {
					errs[c] = fmt.Errorf("bench: serve client %d request %d: %w", c, r, err)
					return
				}
				if want != nil && got != want[idx] {
					mismatches.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ServeLoadResult{}, err
		}
	}
	n := clients * perClient
	res := ServeLoadResult{
		Clients:    clients,
		PerClient:  perClient,
		Requests:   n,
		Elapsed:    elapsed,
		Mismatches: mismatches.Load(),
		Stats:      srv.Stats(),
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(n) / sec
	}
	return res, nil
}
