package bench

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"milr/internal/nn"
	"milr/internal/tensor"
	"milr/internal/xmaps"
)

// Trained-weight caching: training the CIFAR networks in pure Go on one
// core takes minutes, so cmd/milr-bench caches trained weights on disk
// keyed by network kind and training configuration. The cache holds only
// weights; everything else (datasets, checkpoints) regenerates from the
// seed.

type cacheFile struct {
	Kind         int
	Seed         uint64
	TrainSamples int
	Epochs       int
	BaseAcc      float64
	Weights      map[int][]float32
}

func cacheKey(kind NetKind, cfg Config) string {
	return fmt.Sprintf("milr-%d-seed%d-n%d-e%d.gob", int(kind), cfg.Seed, cfg.TrainSamples, cfg.Epochs)
}

// SaveWeights writes the model's trained weights to dir.
func SaveWeights(dir string, env *Env) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: cache dir: %w", err)
	}
	cf := cacheFile{
		Kind:         int(env.Kind),
		Seed:         env.Config.Seed,
		TrainSamples: env.Config.TrainSamples,
		Epochs:       env.Config.Epochs,
		BaseAcc:      env.BaseAcc,
		Weights:      map[int][]float32{},
	}
	snap := env.Model.Snapshot()
	for _, idx := range xmaps.SortedKeys(snap) {
		cf.Weights[idx] = append([]float32(nil), snap[idx].Data()...)
	}
	path := filepath.Join(dir, cacheKey(env.Kind, env.Config))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: cache create: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(&cf); err != nil {
		return fmt.Errorf("bench: cache encode: %w", err)
	}
	return nil
}

// loadWeights restores cached weights into a freshly built model,
// returning the cached baseline accuracy. It returns os.ErrNotExist when
// no usable cache entry exists.
func loadWeights(dir string, kind NetKind, cfg Config, m *nn.Model) (float64, error) {
	path := filepath.Join(dir, cacheKey(kind, cfg))
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var cf cacheFile
	if err := gob.NewDecoder(f).Decode(&cf); err != nil {
		return 0, fmt.Errorf("bench: cache decode %s: %w", path, err)
	}
	if cf.Kind != int(kind) || cf.Seed != cfg.Seed {
		return 0, os.ErrNotExist
	}
	snap := map[int]*tensor.Tensor{}
	// Sorted so a corrupt cache reports the same (lowest) layer on
	// every run.
	for _, idx := range xmaps.SortedKeys(cf.Weights) {
		w := cf.Weights[idx]
		if idx < 0 || idx >= m.NumLayers() {
			return 0, fmt.Errorf("bench: cache layer index %d out of range", idx)
		}
		p, ok := m.Layer(idx).(nn.Parameterized)
		if !ok {
			return 0, fmt.Errorf("bench: cache layer %d not parameterized", idx)
		}
		if len(w) != p.ParamCount() {
			return 0, fmt.Errorf("bench: cache layer %d has %d weights, want %d", idx, len(w), p.ParamCount())
		}
		t, err := tensor.FromSlice(w, len(w))
		if err != nil {
			return 0, err
		}
		snap[idx] = t
	}
	if err := m.Restore(snap); err != nil {
		return 0, err
	}
	return cf.BaseAcc, nil
}

// BuildEnvCached is BuildEnv with a disk cache for the trained weights:
// on a hit, training is skipped entirely.
func BuildEnvCached(kind NetKind, cfg Config, dir string) (*Env, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	model, opts, data, err := buildNet(kind, cfg)
	if err != nil {
		return nil, err
	}
	baseAcc, err := loadWeights(dir, kind, cfg, model)
	if err != nil {
		cfg.logf("[%s] no weight cache (%v); training", kind, err)
		return buildAndMaybeSave(kind, cfg, dir)
	}
	cfg.logf("[%s] loaded cached weights (baseline %.1f%%)", kind, 100*baseAcc)
	pr, err := newProtector(model, opts, cfg, kind)
	if err != nil {
		return nil, err
	}
	return &Env{
		Kind:      kind,
		Model:     model,
		Protector: pr,
		ECC:       newECC(model),
		Test:      data.test,
		BaseAcc:   baseAcc,
		Config:    cfg,
		clean:     model.Snapshot(),
	}, nil
}

func buildAndMaybeSave(kind NetKind, cfg Config, dir string) (*Env, error) {
	env, err := BuildEnv(kind, cfg)
	if err != nil {
		return nil, err
	}
	if err := SaveWeights(dir, env); err != nil {
		cfg.logf("[%s] weight cache write failed: %v", kind, err)
	}
	return env, nil
}
