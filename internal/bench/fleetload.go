package bench

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"milr/internal/fleet"
	"milr/internal/tensor"
)

// Fleet load generation: a closed-loop client swarm with a skewed
// per-model traffic mix against one multi-model router, used by
// cmd/milr-fleet and BenchmarkFleetSkewed. Each model gets its own
// client crowd, so the mix (e.g. 80/20) is expressed as client counts;
// queue-cap rejections (fleet.ErrQueueFull) are counted as shed load,
// not errors, so capped routers can be driven past saturation.

// ModelPredictor is the routing surface RunFleetLoad drives. Both the
// public milr.Fleet and the internal fleet.Fleet satisfy it.
type ModelPredictor interface {
	Predict(ctx context.Context, model string, x *tensor.Tensor) (int, error)
}

// FleetLoadSpec is one model's share of the traffic mix.
type FleetLoadSpec struct {
	// Model is the registered model name to route to.
	Model string
	// Inputs are cycled round-robin by every client of this model.
	Inputs []*tensor.Tensor
	// Want, when non-nil, holds the expected class per input (same
	// indexing as Inputs); divergences are counted as Mismatches.
	Want []int
	// Clients is the number of concurrent closed-loop clients issuing
	// requests to this model; PerClient is how many requests each one
	// issues.
	Clients, PerClient int
}

// FleetModelLoad is one model's slice of a FleetLoadResult.
type FleetModelLoad struct {
	// Requests counts answered requests; Rejected counts queue-cap
	// fast-fails; Mismatches counts answers diverging from Want.
	Requests, Rejected, Mismatches int64
}

// FleetLoadResult summarizes one fleet load run.
type FleetLoadResult struct {
	// Requests, Rejected and Mismatches aggregate every model's
	// counters; PerModel holds the breakdown.
	Requests, Rejected, Mismatches int64
	// PerModel is keyed by FleetLoadSpec.Model.
	PerModel map[string]FleetModelLoad
	// Elapsed is the wall-clock of the whole swarm; Throughput is
	// answered Requests / Elapsed in requests per second.
	Elapsed    time.Duration
	Throughput float64
}

// RunFleetLoad drives every spec's client crowd concurrently against
// one router and reports per-model and aggregate results. A request
// refused with fleet.ErrQueueFull is counted as Rejected and the
// client moves on (shed load); any other error aborts the run.
func RunFleetLoad(ctx context.Context, p ModelPredictor, specs []FleetLoadSpec) (FleetLoadResult, error) {
	if p == nil {
		return FleetLoadResult{}, fmt.Errorf("bench: fleet load needs a router")
	}
	if len(specs) == 0 {
		return FleetLoadResult{}, fmt.Errorf("bench: fleet load needs at least one model spec")
	}
	type counters struct {
		requests, rejected, mismatches atomic.Int64
	}
	counts := make([]counters, len(specs))
	var wg sync.WaitGroup
	errMu := sync.Mutex{}
	var firstErr error
	start := time.Now()
	for si := range specs {
		spec := specs[si]
		if len(spec.Inputs) == 0 {
			return FleetLoadResult{}, fmt.Errorf("bench: model %q spec has no inputs", spec.Model)
		}
		if spec.Clients < 1 || spec.PerClient < 1 {
			return FleetLoadResult{}, fmt.Errorf("bench: model %q spec needs clients >= 1 and perClient >= 1, got %d/%d",
				spec.Model, spec.Clients, spec.PerClient)
		}
		if spec.Want != nil && len(spec.Want) != len(spec.Inputs) {
			return FleetLoadResult{}, fmt.Errorf("bench: model %q: %d expected classes for %d inputs",
				spec.Model, len(spec.Want), len(spec.Inputs))
		}
		c := &counts[si]
		for cl := 0; cl < spec.Clients; cl++ {
			cl := cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < spec.PerClient; r++ {
					idx := (cl*spec.PerClient + r) % len(spec.Inputs)
					got, err := p.Predict(ctx, spec.Model, spec.Inputs[idx])
					if errors.Is(err, fleet.ErrQueueFull) {
						c.rejected.Add(1)
						continue
					}
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("bench: fleet client %s/%d request %d: %w", spec.Model, cl, r, err)
						}
						errMu.Unlock()
						return
					}
					c.requests.Add(1)
					if spec.Want != nil && got != spec.Want[idx] {
						c.mismatches.Add(1)
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return FleetLoadResult{}, firstErr
	}
	res := FleetLoadResult{
		PerModel: make(map[string]FleetModelLoad, len(specs)),
		Elapsed:  elapsed,
	}
	for si, spec := range specs {
		ml := FleetModelLoad{
			Requests:   counts[si].requests.Load(),
			Rejected:   counts[si].rejected.Load(),
			Mismatches: counts[si].mismatches.Load(),
		}
		// Two specs naming the same model merge.
		agg := res.PerModel[spec.Model]
		agg.Requests += ml.Requests
		agg.Rejected += ml.Rejected
		agg.Mismatches += ml.Mismatches
		res.PerModel[spec.Model] = agg
		res.Requests += ml.Requests
		res.Rejected += ml.Rejected
		res.Mismatches += ml.Mismatches
	}
	if sec := elapsed.Seconds(); sec > 0 {
		res.Throughput = float64(res.Requests) / sec
	}
	return res, nil
}
