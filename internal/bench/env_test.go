package bench

import (
	"math"
	"testing"

	"milr/internal/nn"
)

func TestConfigValidation(t *testing.T) {
	if _, err := BuildEnv(Tiny, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := BuildEnv(NetKind(99), DefaultConfig(1)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestDefaultAndFullConfigs(t *testing.T) {
	d := DefaultConfig(1)
	f := FullConfig(1)
	if f.Runs <= d.Runs || f.TestSamples <= d.TestSamples {
		t.Errorf("full config not larger than default: %+v vs %+v", f, d)
	}
	if f.Runs != 40 {
		t.Errorf("full config runs %d, paper uses 40", f.Runs)
	}
}

func TestRunSeedDeterministicAndDistinct(t *testing.T) {
	a := runSeed(1, 2, 3)
	if runSeed(1, 2, 3) != a {
		t.Error("runSeed not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for ri := 0; ri < 5; ri++ {
		for run := 0; run < 5; run++ {
			s := runSeed(1, ri, run)
			if ri == 2 && run == 3 {
				continue
			}
			if seen[s] {
				t.Fatalf("runSeed collision at (%d,%d)", ri, run)
			}
			seen[s] = true
		}
	}
}

func TestParamWordsRoundTrip(t *testing.T) {
	m, err := nn.NewTinyNet()
	if err != nil {
		t.Fatal(err)
	}
	m.InitWeights(5)
	words := paramWords(m)
	if len(words) != m.ParamCount() {
		t.Fatalf("%d words for %d params", len(words), m.ParamCount())
	}
	snap := m.Snapshot()
	// Mutate, write back, verify restoration.
	for i := range words {
		words[i] ^= 0
	}
	writeWordsBack(m, words)
	for k, tc := range snap {
		got := m.Snapshot()[k]
		for i := range tc.Data() {
			if math.Float32bits(tc.Data()[i]) != math.Float32bits(got.Data()[i]) {
				t.Fatalf("layer %d word %d changed", k, i)
			}
		}
	}
}

func TestScrubECCFixesSingleBitFlip(t *testing.T) {
	env := tinyEnv(t)
	var p nn.Parameterized
	for _, l := range env.Model.Layers() {
		if pp, ok := l.(nn.Parameterized); ok {
			p = pp
			break
		}
	}
	d := p.Params().Data()
	orig := d[0]
	d[0] = math.Float32frombits(math.Float32bits(d[0]) ^ (1 << 22))
	stats, err := env.ScrubECC()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Corrected != 1 {
		t.Errorf("corrected %d, want 1", stats.Corrected)
	}
	if d[0] != orig {
		t.Error("single-bit flip not repaired by scrub")
	}
}

func TestApplySchemeUnknown(t *testing.T) {
	env := tinyEnv(t)
	if _, err := applyScheme(env, Scheme(99)); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSchemeAndKindStrings(t *testing.T) {
	for _, s := range []Scheme{NoRecovery, ECCOnly, MILROnly, ECCPlusMILR, Scheme(42)} {
		if s.String() == "" {
			t.Errorf("empty string for scheme %d", int(s))
		}
	}
	for _, k := range []NetKind{MNIST, CIFARSmall, CIFARLarge, Tiny, NetKind(42)} {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}
