// Package bench is the experiment harness: it regenerates every table
// and figure in the paper's evaluation (§V) — the RBER sweeps (Figures
// 5/7/9), whole-weight sweeps (Figures 6/8/10), whole-layer corruption
// tables (IV/VI/VIII), storage tables (V/VII/IX), the timing table (X),
// the recovery-time curve (Figure 11), and the availability–accuracy
// trade-off (Figure 12).
//
// Scale knobs: the paper ran 40 injections per error-rate point against
// TensorFlow on a GPU; this reproduction runs on one CPU core, so Config
// defaults are scaled down and `-full` (cmd/milr-bench) restores paper
// scale. The estimators are identical; only the confidence intervals
// widen.
//
// Campaigns shard: with Config.Workers set, the independent
// (rate, run) cells of a sweep fan out across environment clones with
// per-cell PRNG streams derived from the master seed and cell
// coordinates alone, so results are byte-identical at any worker count
// (shard_test.go pins this). The package also hosts the serving load
// generator (RunServeLoad), the closed-loop client swarm behind
// cmd/milr-serve and the BenchmarkServer* benches.
package bench
