package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	cfg := Config{Runs: 2, TestSamples: 30, TrainSamples: 80, Epochs: 3, Seed: 9}
	env, err := BuildEnv(Tiny, cfg)
	if err != nil {
		t.Fatalf("BuildEnv: %v", err)
	}
	return env
}

func TestBuildEnvTrainsAboveChance(t *testing.T) {
	env := tinyEnv(t)
	// 4 classes: chance is 0.25. The synthetic set is easy; expect well
	// above chance.
	if env.BaseAcc < 0.5 {
		t.Errorf("baseline accuracy %.3f too low", env.BaseAcc)
	}
	acc, err := env.NormalizedAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1.0 {
		t.Errorf("clean normalized accuracy %.3f, want 1.0", acc)
	}
}

func TestEnvResetRestoresAccuracy(t *testing.T) {
	env := tinyEnv(t)
	res, err := RBERSweep(env, []float64{5e-3}, []Scheme{NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points", len(res.Points))
	}
	acc, err := env.NormalizedAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1.0 {
		t.Errorf("after sweep, normalized accuracy %.3f, want 1.0 (reset failed)", acc)
	}
}

func TestSweepSchemesOrdering(t *testing.T) {
	env := tinyEnv(t)
	// At a damaging rate, MILR's median must beat no-recovery's.
	res, err := RBERSweep(env, []float64{2e-3}, []Scheme{NoRecovery, MILROnly, ECCPlusMILR})
	if err != nil {
		t.Fatal(err)
	}
	var none, milr, both BoxStats
	for _, p := range res.Points {
		switch p.Scheme {
		case NoRecovery:
			none = p.Stats
		case MILROnly:
			milr = p.Stats
		case ECCPlusMILR:
			both = p.Stats
		}
	}
	if milr.Median < none.Median {
		t.Errorf("MILR median %.3f below no-recovery %.3f", milr.Median, none.Median)
	}
	if both.Median < 0.95 {
		t.Errorf("ECC+MILR median %.3f, want ≈1", both.Median)
	}
}

func TestWholeWeightSweepECCHelpless(t *testing.T) {
	env := tinyEnv(t)
	res, err := WholeWeightSweep(env, []float64{5e-3}, []Scheme{ECCOnly, MILROnly})
	if err != nil {
		t.Fatal(err)
	}
	var eccS, milrS BoxStats
	for _, p := range res.Points {
		if p.Scheme == ECCOnly {
			eccS = p.Stats
		} else {
			milrS = p.Stats
		}
	}
	// Whole-weight (32-bit) errors: ECC cannot repair them; MILR can.
	if milrS.Median < eccS.Median {
		t.Errorf("MILR median %.3f below ECC %.3f on whole-weight errors", milrS.Median, eccS.Median)
	}
	if milrS.Median < 0.95 {
		t.Errorf("MILR median %.3f on whole-weight errors, want ≈1", milrS.Median)
	}
}

func TestWholeLayerTableShape(t *testing.T) {
	env := tinyEnv(t)
	rows, err := WholeLayerTable(env)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny net: 2 conv + 2 dense + 4 bias = 8 parameterized layers.
	if len(rows) != 8 {
		t.Fatalf("got %d rows: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.Partial {
			continue
		}
		if r.MILRAcc < 0.99 {
			t.Errorf("layer %s: MILR accuracy %.3f, want ≈1", r.Label, r.MILRAcc)
		}
	}
	// Labels follow the paper's convention.
	if rows[0].Label != "Conv." || rows[1].Label != "Conv. Bias" {
		t.Errorf("unexpected labels %q, %q", rows[0].Label, rows[1].Label)
	}
}

func TestStorageAndTimingSmoke(t *testing.T) {
	env := tinyEnv(t)
	rep := Storage(env)
	if rep.MILRBytes() <= 0 || rep.BackupBytes <= 0 {
		t.Error("degenerate storage report")
	}
	timing, err := Timing(env)
	if err != nil {
		t.Fatal(err)
	}
	if timing.SinglePrediction <= 0 || timing.Identification <= 0 {
		t.Errorf("degenerate timing: %+v", timing)
	}
}

func TestRecoveryTimeCurveMonotoneish(t *testing.T) {
	env := tinyEnv(t)
	pts, err := RecoveryTimeCurve(env, []int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Elapsed <= 0 {
			t.Errorf("non-positive recovery time for %d errors", p.Errors)
		}
	}
}

func TestAvailabilityCurveFromEnv(t *testing.T) {
	env := tinyEnv(t)
	pts, err := AvailabilityCurve(env, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestAvailabilityCurveWorkersRestoresConfig(t *testing.T) {
	env := tinyEnv(t)
	pts, err := AvailabilityCurveWorkers(env, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Availability <= 0 || p.Availability > 1 || p.MinAccuracy < 0 || p.MinAccuracy > 1 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if env.Config.Workers != 0 {
		t.Errorf("worker configuration not restored: %d, want 0", env.Config.Workers)
	}
}

func TestCiphertextSweepRuns(t *testing.T) {
	env := tinyEnv(t)
	res, err := CiphertextSweep(env, []float64{1e-4}, []Scheme{NoRecovery, MILROnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points", len(res.Points))
	}
}

func TestWeightCacheRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cfg := Config{Runs: 1, TestSamples: 20, TrainSamples: 60, Epochs: 2, Seed: 31}
	env1, err := BuildEnvCached(Tiny, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Second build must hit the cache and produce identical weights.
	env2, err := BuildEnvCached(Tiny, cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := env1.Model.Snapshot(), env2.Model.Snapshot()
	for k := range s1 {
		if !s1[k].Equalish(s2[k], 0) {
			t.Fatalf("cached weights differ at layer %d", k)
		}
	}
	if env1.BaseAcc != env2.BaseAcc {
		t.Errorf("cached baseline %v != %v", env2.BaseAcc, env1.BaseAcc)
	}
	if _, err := os.Stat(filepath.Join(dir, cacheKey(Tiny, cfg))); err != nil {
		t.Errorf("cache file missing: %v", err)
	}
}

func TestComputeBoxStats(t *testing.T) {
	s := ComputeBoxStats([]float64{3, 1, 2, 5, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("stats %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean %v", s.Mean)
	}
	empty := ComputeBoxStats(nil)
	if empty.N != 0 {
		t.Error("empty stats not zero")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	env := tinyEnv(t)
	var buf bytes.Buffer
	RenderArchitecture(&buf, "arch", env.Model)
	res, err := RBERSweep(env, []float64{1e-3}, []Scheme{NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	RenderSweep(&buf, "sweep", res)
	rows, err := WholeLayerTable(env)
	if err != nil {
		t.Fatal(err)
	}
	RenderLayerTable(&buf, "layers", rows)
	RenderStorage(&buf, "storage", Storage(env))
	timing, err := Timing(env)
	if err != nil {
		t.Fatal(err)
	}
	RenderTiming(&buf, "timing", timing)
	pts, err := RecoveryTimeCurve(env, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	RenderRecoveryCurve(&buf, "recovery", pts)
	av, err := AvailabilityCurve(env, 12)
	if err != nil {
		t.Fatal(err)
	}
	RenderAvailability(&buf, "availability", av)
	if buf.Len() < 500 {
		t.Errorf("renderers produced only %d bytes", buf.Len())
	}
}
