package bench_test

import (
	"context"
	"testing"
	"time"

	"milr/internal/bench"
	"milr/internal/fleet"
	"milr/internal/nn"
	"milr/internal/prng"
	"milr/internal/tensor"
)

func TestRunFleetLoadSkewedMix(t *testing.T) {
	build := func(seed uint64) (*nn.Model, []*tensor.Tensor, []int) {
		m, err := nn.NewTinyNet()
		if err != nil {
			t.Fatal(err)
		}
		m.InitWeights(seed)
		stream := prng.New(seed + 9)
		xs := make([]*tensor.Tensor, 4)
		want := make([]int, 4)
		for i := range xs {
			xs[i] = stream.Tensor(12, 12, 1)
			want[i], err = m.Predict(xs[i])
			if err != nil {
				t.Fatal(err)
			}
		}
		return m, xs, want
	}
	mA, xsA, wantA := build(1)
	mB, xsB, wantB := build(2)
	f := fleet.New(fleet.Config{Workers: 2, BatchSize: 4, MaxDelay: time.Millisecond})
	defer f.Close()
	if err := f.Register("hot", mA, fleet.ModelConfig{Weight: 4}); err != nil {
		t.Fatal(err)
	}
	if err := f.Register("cold", mB, fleet.ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := bench.RunFleetLoad(context.Background(), f, []bench.FleetLoadSpec{
		{Model: "hot", Inputs: xsA, Want: wantA, Clients: 8, PerClient: 5},
		{Model: "cold", Inputs: xsB, Want: wantB, Clients: 2, PerClient: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 || res.Rejected != 0 {
		t.Fatalf("requests/rejected = %d/%d, want 50/0", res.Requests, res.Rejected)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches on clean weights — routing broke bit-identity", res.Mismatches)
	}
	if res.PerModel["hot"].Requests != 40 || res.PerModel["cold"].Requests != 10 {
		t.Fatalf("per-model mix %+v, want 40/10", res.PerModel)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if _, err := bench.RunFleetLoad(context.Background(), f, nil); err == nil {
		t.Fatal("empty spec list accepted")
	}
	if _, err := bench.RunFleetLoad(context.Background(), f, []bench.FleetLoadSpec{{Model: "hot"}}); err == nil {
		t.Fatal("spec without inputs accepted")
	}
}

func TestRunFleetLoadCountsRejectsAsShedLoad(t *testing.T) {
	m, xs, _ := func() (*nn.Model, []*tensor.Tensor, []int) {
		m, err := nn.NewTinyNet()
		if err != nil {
			t.Fatal(err)
		}
		m.InitWeights(5)
		stream := prng.New(6)
		xs := []*tensor.Tensor{stream.Tensor(12, 12, 1)}
		return m, xs, nil
	}()
	// A 1-slot queue under 8 concurrent clients must shed load without
	// failing the run.
	f := fleet.New(fleet.Config{Workers: 1, BatchSize: 1, MaxDelay: 0, QueueCap: 1})
	defer f.Close()
	if err := f.Register("m", m, fleet.ModelConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := bench.RunFleetLoad(context.Background(), f, []bench.FleetLoadSpec{
		{Model: "m", Inputs: xs, Clients: 8, PerClient: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Rejected != 80 {
		t.Fatalf("answered %d + rejected %d != 80 issued", res.Requests, res.Rejected)
	}
	if res.Requests == 0 {
		t.Fatal("everything rejected — the queue never served")
	}
}
