package bench_test

import (
	"context"
	"testing"
	"time"

	"milr/internal/bench"
	"milr/internal/nn"
	"milr/internal/prng"
	"milr/internal/serve"
	"milr/internal/tensor"
)

func TestRunServeLoad(t *testing.T) {
	m, err := nn.NewTinyNet()
	if err != nil {
		t.Fatal(err)
	}
	m.InitWeights(42)
	stream := prng.New(3)
	inputs := make([]*tensor.Tensor, 8)
	want := make([]int, 8)
	for i := range inputs {
		inputs[i] = stream.Tensor(12, 12, 1)
		want[i], err = m.Predict(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	srv, err := serve.New(m, serve.Config{BatchSize: 4, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := bench.RunServeLoad(context.Background(), srv, inputs, want, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 48 || res.Stats.Served != 48 {
		t.Fatalf("requests %d served %d, want 48/48", res.Requests, res.Stats.Served)
	}
	if res.Mismatches != 0 {
		t.Fatalf("%d mismatches against direct predictions on clean weights", res.Mismatches)
	}
	if res.Throughput <= 0 {
		t.Fatalf("non-positive throughput %v", res.Throughput)
	}
	if res.Stats.MeanBatchFill <= 1 {
		t.Fatalf("closed-loop swarm of 8 clients did not coalesce: %+v", res.Stats)
	}
}

func TestRunServeLoadValidation(t *testing.T) {
	m, err := nn.NewTinyNet()
	if err != nil {
		t.Fatal(err)
	}
	m.InitWeights(1)
	srv, err := serve.New(m, serve.Config{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	x := prng.New(1).Tensor(12, 12, 1)
	ctx := context.Background()
	if _, err := bench.RunServeLoad(ctx, nil, []*tensor.Tensor{x}, nil, 1, 1); err == nil {
		t.Fatal("nil server accepted")
	}
	if _, err := bench.RunServeLoad(ctx, srv, nil, nil, 1, 1); err == nil {
		t.Fatal("empty input set accepted")
	}
	if _, err := bench.RunServeLoad(ctx, srv, []*tensor.Tensor{x}, []int{1, 2}, 1, 1); err == nil {
		t.Fatal("mis-sized want accepted")
	}
	if _, err := bench.RunServeLoad(ctx, srv, []*tensor.Tensor{x}, nil, 0, 5); err == nil {
		t.Fatal("zero clients accepted")
	}
}
