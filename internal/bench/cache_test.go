package bench

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadWeightsMissingFile(t *testing.T) {
	m, _, _, err := buildNet(Tiny, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadWeights(t.TempDir(), Tiny, DefaultConfig(1), m); err == nil {
		t.Fatal("missing cache file accepted")
	}
}

func TestLoadWeightsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig(1)
	path := filepath.Join(dir, cacheKey(Tiny, cfg))
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _, _, err := buildNet(Tiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadWeights(dir, Tiny, cfg, m); err == nil {
		t.Fatal("corrupt cache accepted")
	}
}

func TestLoadWeightsWrongArchitecture(t *testing.T) {
	// Save a tiny env, then try to load it into an MNIST model: the
	// layer sizes must not match and the load must fail rather than
	// silently mis-restore.
	dir := t.TempDir()
	cfg := Config{Runs: 1, TestSamples: 10, TrainSamples: 20, Epochs: 1, Seed: 77}
	env, err := BuildEnv(Tiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveWeights(dir, env); err != nil {
		t.Fatal(err)
	}
	// Force the same cache key to be read for a different architecture.
	mnist, _, _, err := buildNet(MNIST, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(dir, cacheKey(Tiny, cfg))
	dst := filepath.Join(dir, cacheKey(MNIST, cfg))
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadWeights(dir, MNIST, cfg, mnist); err == nil {
		t.Fatal("cross-architecture cache accepted")
	}
}

func TestCacheKeyDistinguishesConfigs(t *testing.T) {
	a := cacheKey(Tiny, Config{Seed: 1, TrainSamples: 10, Epochs: 1})
	b := cacheKey(Tiny, Config{Seed: 2, TrainSamples: 10, Epochs: 1})
	c := cacheKey(MNIST, Config{Seed: 1, TrainSamples: 10, Epochs: 1})
	d := cacheKey(Tiny, Config{Seed: 1, TrainSamples: 20, Epochs: 1})
	keys := map[string]bool{a: true, b: true, c: true, d: true}
	if len(keys) != 4 {
		t.Fatalf("cache keys collide: %q %q %q %q", a, b, c, d)
	}
}
