package bench

import (
	"io"
	"testing"

	"milr/internal/faults"
)

// TestMNISTRecoveryAtModerateRBER is the end-to-end regression test of
// the paper's headline claim at figure-5 scale: at RBER 1e-5 the MNIST
// network self-heals back to (essentially) full accuracy. It caught two
// real bugs during development: exponential error growth in non-dominant
// triangular dummy systems, and NaN weights being invisible to
// detection.
func TestMNISTRecoveryAtModerateRBER(t *testing.T) {
	if testing.Short() {
		t.Skip("MNIST training in -short mode")
	}
	cfg := Config{Runs: 1, TestSamples: 30, TrainSamples: 120, Epochs: 1, Seed: 42, Verbose: io.Discard}
	env, err := BuildEnv(MNIST, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean := env.Model.Snapshot()
	for run := 0; run < 2; run++ {
		if err := env.Reset(); err != nil {
			t.Fatal(err)
		}
		inj := faults.New(uint64(run + 100))
		if n := inj.BitFlips(env.Model, 1e-5); n == 0 {
			t.Fatal("no flips injected")
		}
		if _, _, err := env.Protector.SelfHeal(); err != nil {
			t.Fatal(err)
		}
		// Every weight must be back within a small tolerance of clean,
		// except the paper's acknowledged leak: errors too small for the
		// lightweight detector. Bound both count and magnitude.
		snap := env.Model.Snapshot()
		wrong := 0
		var worst float64
		for k := range clean {
			da, db := clean[k].Data(), snap[k].Data()
			for i := range da {
				d := float64(da[i] - db[i])
				if d < 0 {
					d = -d
				}
				if d > 1e-3 {
					wrong++
				}
				if d > worst {
					worst = d
				}
			}
		}
		if wrong > 200 {
			t.Errorf("run %d: %d weights still wrong after self-heal", run, wrong)
		}
		if worst > 1.0 {
			t.Errorf("run %d: worst residual weight error %g", run, worst)
		}
		acc, err := env.NormalizedAccuracy()
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.9 {
			t.Errorf("run %d: normalized accuracy %.3f after self-heal", run, acc)
		}
	}
}
