package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"milr/internal/availability"
	"milr/internal/core"
	"milr/internal/nn"
)

// Text rendering of the reproduced tables and figures. Figures are
// rendered as aligned numeric series (one line per error rate) — the
// same data the paper plots.

// RenderArchitecture prints a Table I/II/III style listing.
func RenderArchitecture(w io.Writer, title string, m *nn.Model) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s %-14s %12s\n", "Layer", "Output Shape", "Trainable")
	for _, row := range nn.Architecture(m) {
		fmt.Fprintf(w, "%-14s %-14s %12d\n", row.Layer, row.OutShape, row.Trainable)
	}
	fmt.Fprintf(w, "%-14s %-14s %12d\n\n", "Total", "", m.ParamCount())
}

// RenderSweep prints a figure's data: one block per scheme, one line per
// rate with the box statistics.
func RenderSweep(w io.Writer, title string, res *SweepResult) {
	fmt.Fprintf(w, "%s\n", title)
	byScheme := map[Scheme][]SweepPoint{}
	var order []Scheme
	for _, p := range res.Points {
		if _, seen := byScheme[p.Scheme]; !seen {
			order = append(order, p.Scheme)
		}
		byScheme[p.Scheme] = append(byScheme[p.Scheme], p)
	}
	for _, scheme := range order {
		fmt.Fprintf(w, "  (%s) normalized accuracy\n", scheme)
		fmt.Fprintf(w, "  %-8s %7s %7s %7s %7s %7s   %s\n", "rate", "min", "q1", "median", "q3", "max", "box")
		for _, p := range byScheme[scheme] {
			fmt.Fprintf(w, "  %-8.0e %7.3f %7.3f %7.3f %7.3f %7.3f   %s\n",
				p.Rate, p.Stats.Min, p.Stats.Q1, p.Stats.Median, p.Stats.Q3, p.Stats.Max,
				sparkline(p.Stats))
		}
		// The paper's detection-coverage statistic (§V-B): the fraction
		// of runs in which the repair path believed it covered every
		// erroneous layer (MILR: all layers verified; ECC: no
		// uncorrectable words).
		if scheme == MILROnly || scheme == ECCPlusMILR {
			var covered, total int
			for _, p := range byScheme[scheme] {
				covered += p.DetectedAll
				total += p.Stats.N
			}
			if total > 0 {
				fmt.Fprintf(w, "  full-coverage repairs: %.1f%% of %d runs\n",
					100*float64(covered)/float64(total), total)
			}
		}
	}
	fmt.Fprintln(w)
}

// sparkline renders a 30-column ASCII box plot of a [0,1] statistic.
func sparkline(s BoxStats) string {
	const width = 30
	col := func(v float64) int {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		c := int(v * (width - 1))
		return c
	}
	line := []byte(strings.Repeat(" ", width))
	for i := col(s.Min); i <= col(s.Max) && i < width; i++ {
		line[i] = '-'
	}
	for i := col(s.Q1); i <= col(s.Q3) && i < width; i++ {
		line[i] = '='
	}
	line[col(s.Median)] = '|'
	return "[" + string(line) + "]"
}

// RenderLayerTable prints a Table IV/VI/VIII style listing.
func RenderLayerTable(w io.Writer, title string, rows []LayerRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %10s %12s\n", "Layer", "None", "MILR")
	for _, r := range rows {
		milr := fmt.Sprintf("%.1f%%", 100*r.MILRAcc)
		if r.Partial {
			milr = fmt.Sprintf("N/A* (%.1f%%)", 100*r.MILRAcc)
		}
		fmt.Fprintf(w, "%-16s %9.1f%% %12s\n", r.Label, 100*r.NoneAcc, milr)
	}
	fmt.Fprintf(w, "* Convolution partial recoverable (measured least-squares best effort in parentheses)\n\n")
}

// RenderStorage prints a Table V/VII/IX style listing.
func RenderStorage(w io.Writer, title string, rep *core.StorageReport) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-16s %10s %10s %12s\n", "Backup Weights", "ECC", "MILR", "ECC & MILR")
	fmt.Fprintf(w, "%13.2f MB %7.2f MB %7.2f MB %10.2f MB\n",
		core.MB(rep.BackupBytes), core.MB(rep.ECCBytes), core.MB(rep.MILRBytes()), core.MB(rep.CombinedBytes()))
	fmt.Fprintf(w, "  breakdown:\n")
	for _, l := range rep.Layers {
		if l.Total() == 0 {
			continue
		}
		fmt.Fprintf(w, "    %-12s partial=%dB checkpoint=%dB dummy=%dB crc=%dB\n",
			l.Name, l.PartialBytes, l.CheckpointBytes, l.DummyBytes, l.CRCBytes)
	}
	fmt.Fprintf(w, "    %-12s %d B\n\n", "output ckpt", rep.OutputCheckpointBytes)
}

// RenderTiming prints a Table X style listing.
func RenderTiming(w io.Writer, title string, res *TimingResult) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-22s %14v\n", "Single Prediction", res.SinglePrediction)
	fmt.Fprintf(w, "%-22s %14v\n", "Batch Prediction", res.BatchPerSample)
	fmt.Fprintf(w, "%-22s %14v\n\n", "Identification", res.Identification)
}

// RenderRecoveryCurve prints the Figure 11 series.
func RenderRecoveryCurve(w io.Writer, title string, pts []RecoveryPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s %14s\n", "errors", "recovery time")
	var maxMs float64
	for _, p := range pts {
		if ms := float64(p.Elapsed) / float64(time.Millisecond); ms > maxMs {
			maxMs = ms
		}
	}
	for _, p := range pts {
		bar := ""
		if maxMs > 0 {
			bar = strings.Repeat("#", int(30*float64(p.Elapsed)/float64(time.Millisecond)/maxMs))
		}
		fmt.Fprintf(w, "%10d %14v %s\n", p.Errors, p.Elapsed.Round(time.Microsecond), bar)
	}
	fmt.Fprintln(w)
}

// RenderAvailability prints the Figure 12 series.
func RenderAvailability(w io.Writer, title string, pts []availability.Point) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%14s %14s\n", "availability", "min accuracy")
	step := len(pts) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		fmt.Fprintf(w, "%14.6f %14.6f\n", pts[i].Availability, pts[i].MinAccuracy)
	}
	fmt.Fprintln(w)
}

// SpeedupRow is one experiment × worker-count wall-clock measurement.
type SpeedupRow struct {
	ID      string
	Workers int
	Elapsed time.Duration
}

// RenderSpeedup prints the -cpusweep wall-clock table: one line per
// experiment per worker count, with the speedup column normalized to
// that experiment's lowest-worker-count row (regardless of the order
// the counts were requested in).
func RenderSpeedup(w io.Writer, title string, rows []SpeedupRow) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s %8s %14s %9s\n", "experiment", "workers", "wall-clock", "speedup")
	base := map[string]time.Duration{}
	baseWorkers := map[string]int{}
	for _, r := range rows {
		if bw, ok := baseWorkers[r.ID]; !ok || r.Workers < bw {
			baseWorkers[r.ID] = r.Workers
			base[r.ID] = r.Elapsed
		}
	}
	for _, r := range rows {
		speedup := 0.0
		if r.Elapsed > 0 {
			speedup = float64(base[r.ID]) / float64(r.Elapsed)
		}
		fmt.Fprintf(w, "%-10s %8d %14s %8.2fx\n", r.ID, r.Workers, r.Elapsed.Round(time.Millisecond), speedup)
	}
	fmt.Fprintln(w)
}
