package bench

import (
	"bytes"
	"runtime"
	"testing"
)

// Determinism regression for sharded campaigns: the same master seed
// must yield byte-identical experiment summaries at every worker count.
// The contract rests on per-cell PRNG streams derived from (seed, rate
// index, run index) alone — never from worker identity or scheduling —
// plus bit-identical parallel solvers underneath.

func shardWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g > 4 {
		counts = append(counts, g)
	}
	return counts
}

// renderCampaigns runs one RBER sweep point grid and one whole-layer
// table and renders both — bytes are the regression unit because the
// rendered tables are the experiment artifact.
func renderCampaigns(t *testing.T, env *Env) []byte {
	t.Helper()
	var buf bytes.Buffer
	sweepRes, err := RBERSweep(env, []float64{5e-4, 2e-3}, []Scheme{NoRecovery, MILROnly, ECCPlusMILR})
	if err != nil {
		t.Fatal(err)
	}
	RenderSweep(&buf, "determinism: RBER", sweepRes)
	rows, err := WholeLayerTable(env)
	if err != nil {
		t.Fatal(err)
	}
	RenderLayerTable(&buf, "determinism: whole-layer", rows)
	return buf.Bytes()
}

func TestShardedCampaignDeterminism(t *testing.T) {
	cfg := Config{Runs: 3, TestSamples: 24, TrainSamples: 60, Epochs: 2, Seed: 1234}
	env, err := BuildEnv(Tiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env.SetWorkers(0) // serial reference
	want := renderCampaigns(t, env)
	if len(want) == 0 {
		t.Fatal("empty reference summary")
	}
	for _, workers := range shardWorkerCounts() {
		env.SetWorkers(workers)
		got := renderCampaigns(t, env)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: summary differs from serial reference\n got:\n%s\nwant:\n%s",
				workers, got, want)
		}
	}
	env.SetWorkers(0)
}

// TestCloneIsIndependent pins Clone's isolation contract: corrupting a
// clone never leaks into the master environment, and the clone detects
// and heals with its own protector.
func TestCloneIsIndependent(t *testing.T) {
	cfg := Config{Runs: 1, TestSamples: 16, TrainSamples: 40, Epochs: 2, Seed: 7}
	env, err := BuildEnv(Tiny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := env.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Model == env.Model || clone.Protector == env.Protector {
		t.Fatal("clone shares mutable state with master")
	}
	// Same trained weights.
	for li, wt := range env.Model.Snapshot() {
		cd := clone.Model.Snapshot()[li].Data()
		for i, v := range wt.Data() {
			if cd[i] != v {
				t.Fatalf("layer %d weight %d differs in clone", li, i)
			}
		}
	}
	cloneAccBefore, err := clone.NormalizedAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if cloneAccBefore != 1.0 {
		t.Fatalf("clean clone normalized accuracy %v, want 1.0", cloneAccBefore)
	}
	res, err := RBERSweep(clone, []float64{5e-3}, []Scheme{NoRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("got %d points", len(res.Points))
	}
	masterAcc, err := env.NormalizedAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if masterAcc != 1.0 {
		t.Fatalf("master accuracy %v after clone campaign, want 1.0", masterAcc)
	}
	det, err := env.Protector.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if det.HasErrors() {
		t.Fatalf("master protector flags errors after clone campaign: %+v", det.Findings)
	}
}
