package dataset

import (
	"testing"

	"milr/internal/nn"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config must fail")
	}
	if _, err := New(MNISTLike(1)); err != nil {
		t.Errorf("MNISTLike config rejected: %v", err)
	}
}

func TestShapes(t *testing.T) {
	d, err := New(MNISTLike(1))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Sample(3, 0)
	if s.Label != 3 {
		t.Errorf("label %d, want 3", s.Label)
	}
	if got := s.X.Shape(); got[0] != 28 || got[1] != 28 || got[2] != 1 {
		t.Errorf("shape %v", got)
	}
	c, err := New(CIFARLike(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Sample(0, 0).X.Shape(); got[0] != 32 || got[1] != 32 || got[2] != 3 {
		t.Errorf("shape %v", got)
	}
}

func TestDeterminism(t *testing.T) {
	d1, _ := New(MNISTLike(42))
	d2, _ := New(MNISTLike(42))
	a := d1.Sample(5, 17)
	b := d2.Sample(5, 17)
	if !a.X.Equalish(b.X, 0) {
		t.Fatal("samples not deterministic")
	}
	c := d1.Sample(5, 18)
	if a.X.Equalish(c.X, 0) {
		t.Fatal("distinct indices produced identical samples")
	}
}

func TestBatchRoundRobinAndSplit(t *testing.T) {
	d, _ := New(MNISTLike(7))
	batch := d.Batch(25, 0)
	if len(batch) != 25 {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, s := range batch {
		if s.Label != i%10 {
			t.Fatalf("sample %d label %d, want %d", i, s.Label, i%10)
		}
	}
	train, test := d.TrainTest(20, 20)
	for i := range train {
		if train[i].Label == test[i].Label && train[i].X.Equalish(test[i].X, 0) {
			t.Fatal("train and test splits overlap")
		}
	}
}

func TestTemplatesSeparated(t *testing.T) {
	d, _ := New(MNISTLike(9))
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			diff, err := d.Template(a).MaxAbsDiff(d.Template(b))
			if err != nil {
				t.Fatal(err)
			}
			if diff < 0.1 {
				t.Errorf("templates %d and %d too close: %v", a, b, diff)
			}
		}
	}
}

// A tiny model must be able to learn the synthetic data well above
// chance — the property the whole evaluation depends on.
func TestLearnable(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	cfg := MNISTLike(11)
	cfg.Height, cfg.Width = 12, 12 // shrink to the tiny net's input
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.NewTinyNet()
	if err != nil {
		t.Fatal(err)
	}
	// The tiny net has 4 outputs; use only 4 classes.
	var train, test []nn.Sample
	for i := 0; i < 160; i++ {
		train = append(train, d.Sample(i%4, i/4))
	}
	for i := 0; i < 80; i++ {
		test = append(test, d.Sample(i%4, 1000+i/4))
	}
	m.InitWeights(1)
	if _, err := nn.Train(m, train, nn.TrainConfig{Epochs: 6, BatchSize: 8, LR: 0.03, Momentum: 0.9, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	acc, err := nn.Evaluate(m, test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("synthetic dataset not learnable: accuracy %v", acc)
	}
}
