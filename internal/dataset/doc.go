// Package dataset generates the deterministic synthetic image
// classification datasets this reproduction trains and evaluates on.
//
// The paper used MNIST and CIFAR-10; this module is offline, so we
// substitute synthetic datasets with matching tensor shapes (28×28×1 and
// 32×32×3, 10 classes). Each class is defined by a smooth pseudo-random
// template; samples are the template plus per-sample jitter (shift,
// amplitude scaling, additive noise). The templates are well separated by
// construction, so small training budgets reach high accuracy — which is
// what the paper's metric needs: every evaluation reports accuracy
// *normalized to the error-free network*, so the relative degradation and
// recovery behaviour, not the absolute dataset difficulty, is what
// matters. (See ARCHITECTURE.md's deviations table.)
package dataset
