package dataset

import (
	"fmt"
	"math"

	"milr/internal/nn"
	"milr/internal/prng"
	"milr/internal/tensor"
)

// Config describes a synthetic dataset.
type Config struct {
	Height, Width, Channels int
	Classes                 int
	// NoiseStd is the per-pixel additive Gaussian noise level.
	NoiseStd float64
	// MaxShift is the largest circular spatial shift applied per sample.
	MaxShift int
	Seed     uint64
}

// MNISTLike returns the 28×28×1 10-class configuration standing in for
// MNIST.
func MNISTLike(seed uint64) Config {
	return Config{Height: 28, Width: 28, Channels: 1, Classes: 10, NoiseStd: 0.15, MaxShift: 2, Seed: seed}
}

// CIFARLike returns the 32×32×3 10-class configuration standing in for
// CIFAR-10.
func CIFARLike(seed uint64) Config {
	return Config{Height: 32, Width: 32, Channels: 3, Classes: 10, NoiseStd: 0.15, MaxShift: 2, Seed: seed}
}

// Dataset holds class templates and produces samples deterministically.
type Dataset struct {
	cfg       Config
	templates []*tensor.Tensor
}

// New builds the class templates for a configuration.
func New(cfg Config) (*Dataset, error) {
	if cfg.Height <= 0 || cfg.Width <= 0 || cfg.Channels <= 0 || cfg.Classes <= 0 {
		return nil, fmt.Errorf("dataset: invalid config %+v", cfg)
	}
	d := &Dataset{cfg: cfg, templates: make([]*tensor.Tensor, cfg.Classes)}
	for c := 0; c < cfg.Classes; c++ {
		d.templates[c] = makeTemplate(cfg, c)
	}
	return d, nil
}

// makeTemplate builds a smooth, class-specific pattern: a sum of a few
// pseudo-random 2-D sinusoids per channel. Distinct classes draw distinct
// frequencies and phases, so templates are far apart in L2.
func makeTemplate(cfg Config, class int) *tensor.Tensor {
	stream := prng.New(cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(class+1)))
	t := tensor.New(cfg.Height, cfg.Width, cfg.Channels)
	data := t.Data()
	type wave struct{ fx, fy, phase, amp float64 }
	for ch := 0; ch < cfg.Channels; ch++ {
		waves := make([]wave, 3)
		for i := range waves {
			waves[i] = wave{
				fx:    float64(1 + stream.Intn(4)),
				fy:    float64(1 + stream.Intn(4)),
				phase: 2 * math.Pi * stream.Float64(),
				amp:   0.4 + 0.6*stream.Float64(),
			}
		}
		for y := 0; y < cfg.Height; y++ {
			for x := 0; x < cfg.Width; x++ {
				var v float64
				for _, w := range waves {
					v += w.amp * math.Sin(2*math.Pi*(w.fx*float64(x)/float64(cfg.Width)+
						w.fy*float64(y)/float64(cfg.Height))+w.phase)
				}
				data[(y*cfg.Width+x)*cfg.Channels+ch] = float32(v / 3)
			}
		}
	}
	return t
}

// Config returns the dataset configuration.
func (d *Dataset) Config() Config { return d.cfg }

// Template returns the clean pattern for a class (useful in tests).
func (d *Dataset) Template(class int) *tensor.Tensor { return d.templates[class].Clone() }

// Sample produces the idx-th sample of a class deterministically.
func (d *Dataset) Sample(class, idx int) nn.Sample {
	cfg := d.cfg
	stream := prng.New(cfg.Seed ^ mix64(uint64(class)*1_000_003+uint64(idx)+1))
	sx := 0
	sy := 0
	if cfg.MaxShift > 0 {
		sx = stream.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		sy = stream.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
	}
	gain := float32(0.8 + 0.4*stream.Float64())
	tmpl := d.templates[class].Data()
	out := tensor.New(cfg.Height, cfg.Width, cfg.Channels)
	od := out.Data()
	for y := 0; y < cfg.Height; y++ {
		yy := ((y+sy)%cfg.Height + cfg.Height) % cfg.Height
		for x := 0; x < cfg.Width; x++ {
			xx := ((x+sx)%cfg.Width + cfg.Width) % cfg.Width
			for ch := 0; ch < cfg.Channels; ch++ {
				v := gain * tmpl[(yy*cfg.Width+xx)*cfg.Channels+ch]
				v += float32(cfg.NoiseStd * stream.Norm())
				od[(y*cfg.Width+x)*cfg.Channels+ch] = v
			}
		}
	}
	return nn.Sample{X: out, Label: class}
}

// Batch returns n samples, classes round-robin, deterministic in (seed,
// offset). Use distinct offsets for disjoint train/test splits.
func (d *Dataset) Batch(n, offset int) []nn.Sample {
	out := make([]nn.Sample, n)
	for i := 0; i < n; i++ {
		class := i % d.cfg.Classes
		out[i] = d.Sample(class, offset+i/d.cfg.Classes)
	}
	return out
}

// TrainTest returns disjoint train and test splits.
func (d *Dataset) TrainTest(trainN, testN int) (train, test []nn.Sample) {
	train = d.Batch(trainN, 0)
	test = d.Batch(testN, 1_000_000)
	return train, test
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
