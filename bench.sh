#!/bin/sh -e
# bench.sh — multi-CPU benchmark sweeps over the MILR engine's key
# paths, in the style of sync_gateway's bench.sh, hardened per the
# benchmark-validation protocol: a clean build sanity-checks the tree
# before any numbers are produced, every suite runs at -cpu 1,2,4 so
# scaling (or the lack of it — see BENCHMARKS.md on single-core boxes)
# is visible, and a repeated-run variance check guards against the
# stale-binary / noisy-neighbour failure mode.
#
# Usage:
#   ./bench.sh             # default: -benchtime 1x smoke + variance check
#   BENCHTIME=5s ./bench.sh    # longer, steadier numbers
#   CPUS=1,2,4,8 ./bench.sh    # wider CPU sweep

BENCHTIME="${BENCHTIME:-1x}"
CPUS="${CPUS:-1,2,4}"

echo "== clean build sanity (benchmark-validation protocol) =="
go vet ./...
go build ./...
go version
git rev-parse HEAD 2>/dev/null || true

echo "== GEMM kernel scaling =="
go test ./internal/tensor -bench 'MatMulWorkers' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== architecture tables (Tables I–III) =="
go test . -bench 'BenchmarkTables1to3_Architectures' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== batch-first inference: stacked GEMM vs per-sample loop (8 samples, MNIST) =="
go test . -bench 'BenchmarkForward(Batch|Loop)$' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== serving: coalesced vs uncoalesced closed-loop swarm (8 clients, MNIST) =="
go test . -bench 'BenchmarkServer(Coalesced|Uncoalesced)$' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== fleet: skewed 80/20 two-model mix over one shared batch budget =="
go test . -bench 'BenchmarkFleetSkewed$' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== tracer overhead: the coalesced swarm with tracing off vs on =="
go test . -bench 'BenchmarkTracerOverhead' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== recovery: batched segment sweeps vs sequential per-layer pipeline (MNIST, 3 segments) =="
go test . -bench 'BenchmarkBatchedRecovery' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

echo "== RBER sweep campaign, serial vs sharded (Figure 9 path) =="
go test . -bench 'BenchmarkRBERSweepWorkers' -benchtime "$BENCHTIME" -run XXX

echo "== detection scrub (Table X identification path) =="
go test . -bench 'BenchmarkTable10_Identification' -cpu "$CPUS" -benchtime "$BENCHTIME" -run XXX

# The HTTP gateway (cmd/milr-gateway, internal/gateway) is deliberately
# absent from these sweeps: it adds only JSON/transport overhead on top
# of the fleet path benchmarked above, and kernel numbers must not be
# diluted by network-stack noise. Its behaviour is pinned by tests and
# the CI gateway smoke job instead.

echo "== variance check: the architecture bench twice, same -cpu =="
go test . -bench 'BenchmarkTables1to3_Architectures' -cpu 1 -benchtime "$BENCHTIME" -run XXX -count 2
echo "If the two runs above differ wildly, do NOT trust this session's numbers."
