package milr_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// API-surface regression: the exported identifiers of the milr façade
// are pinned to a golden list so a future change cannot silently add,
// rename, or drop public API. Methods are listed as Type.Method for
// exported receiver types declared in this package. Update the list
// deliberately, in the same commit as the API change it blesses.
var goldenAPI = []string{
	// Runtime and functional options.
	"NewRuntime",
	"Option",
	"Runtime",
	"Runtime.BatchSize",
	"Runtime.Evaluate",
	"Runtime.Guard",
	"Runtime.MaxBatchDelay",
	"Runtime.NewGuardedServer",
	"Runtime.NewServer",
	"Runtime.Options",
	"Runtime.Protect",
	"Runtime.Seed",
	"Runtime.With",
	"Runtime.Workers",
	"WithBatchSize",
	"WithCRCGroup",
	"WithDenseBand",
	"WithMaxBatchDelay",
	"WithMaxFullSolveTaps",
	"WithOptions",
	"WithSeed",
	"WithTolerance",
	"WithWorkers",
	// Serving (PR 3): the batch-coalescing inference front-end.
	"DefaultMaxBatchDelay",
	"ErrServerClosed",
	"Server",
	"ServerStats",
	// Fleet (PR 4): multi-model routing over a shared worker budget,
	// with admission control.
	"ErrFleetClosed",
	"ErrQueueFull",
	"Fleet",
	"Fleet.Close",
	"Fleet.Predict",
	"Fleet.PredictBatch",
	"Fleet.Register",
	"Fleet.RegisterProtected",
	"Fleet.ScrubOnce",
	"Fleet.StartGuard",
	"Fleet.Stats",
	"ScrubResult",
	"FleetStats",
	"ModelOption",
	// Gateway support (PR 6): typed admission errors and the model
	// index the HTTP gateway maps onto status codes and payloads.
	"ErrUnknownModel",
	"Fleet.Models",
	"ModelInfo",
	"QueueFullError",
	"ModelStats",
	"NewFleet",
	"Runtime.DefaultDeadline",
	"Runtime.QueueCap",
	"WithDefaultDeadline",
	"WithModelBackpressure",
	"WithModelQueueCap",
	"WithModelWeight",
	"WithQueueCap",
	// Elasticity (PR 10): rolling model swaps under live traffic.
	"Fleet.Replace",
	"Fleet.ReplaceProtected",
	"Fleet.Unregister",
	// Re-exported engine types.
	"DetectionReport",
	"Guard",
	"GuardConfig",
	"GuardEvent",
	"GuardStats",
	"Layer",
	"LayerPlanInfo",
	"Model",
	"Options",
	"Parameterized",
	"Protector",
	"RecoveryReport",
	"Sample",
	"Shape",
	"StorageReport",
	"Tensor",
	// Recovery statuses.
	"Approximate",
	"Failed",
	"Recovered",
	// Network constructors.
	"NewCIFARLargeNet",
	"NewCIFARSmallNet",
	"NewMNISTNet",
	"NewTinyNet",
	// Persistence, guards, tensors, training.
	"DefaultOptions",
	"Evaluate",
	"LoadProtector",
	"NewGuard",
	"NewTensor",
	"Protect",
	"ProtectWithOptions",
	"SaveProtector",
	"TensorFromSlice",
	"Train",
	"TrainConfig",
}

func TestAPISurfaceGolden(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["milr"]
	if !ok {
		t.Fatalf("package milr not found in cwd (got %v)", pkgs)
	}
	got := map[string]bool{}
	for name, file := range pkg.Files {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil {
					got[d.Name.Name] = true
					continue
				}
				if recv := receiverName(d.Recv); recv != "" && ast.IsExported(recv) {
					got[recv+"."+d.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							got[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, id := range s.Names {
							if id.IsExported() {
								got[id.Name] = true
							}
						}
					}
				}
			}
		}
	}
	want := map[string]bool{}
	for _, id := range goldenAPI {
		want[id] = true
	}
	var missing, extra []string
	for id := range want {
		if !got[id] {
			missing = append(missing, id)
		}
	}
	for id := range got {
		if !want[id] {
			extra = append(extra, id)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("exported identifiers removed from the façade (deliberate API break? update goldenAPI):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if len(extra) > 0 {
		t.Errorf("new exported identifiers not in the golden list (add them deliberately):\n  %s",
			strings.Join(extra, "\n  "))
	}
}

func receiverName(fields *ast.FieldList) string {
	if fields == nil || len(fields.List) == 0 {
		return ""
	}
	expr := fields.List[0].Type
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("%T", expr)
}
