package milr

import (
	"context"
	"time"

	"milr/internal/fleet"
	"milr/internal/serve"
)

// This file is the multi-model serving surface: one milr.Fleet routes
// Predict calls to N named models over per-model coalescing queues and
// a single shared batch-execution budget, with weighted fair
// arbitration and admission control. See internal/fleet for the
// routing design and ARCHITECTURE.md for the layer map.

// ErrQueueFull is returned by Fleet.Predict / Fleet.PredictBatch and by
// a capped Server's Predict / PredictBatch when the target admission
// queue is at its configured cap (WithQueueCap / WithModelQueueCap) and
// the model was not registered with WithModelBackpressure. The request
// was refused in O(1) without occupying a queue slot — shed load or
// retry later.
var ErrQueueFull = fleet.ErrQueueFull

// ErrFleetClosed is returned by Fleet methods once Fleet.Close has
// been called; requests admitted before the close are still served.
var ErrFleetClosed = fleet.ErrClosed

// ErrUnknownModel is returned by Fleet.Predict / Fleet.PredictBatch
// when the named model has never been registered. A routing layer (the
// gateway maps it to 404) matches it with errors.Is instead of string
// matching.
var ErrUnknownModel = fleet.ErrUnknownModel

// QueueFullError is the concrete error behind every ErrQueueFull
// rejection, on both serving surfaces: errors.Is(err, ErrQueueFull)
// still matches, and errors.As additionally recovers which surface
// ("serve" or "fleet"), which fleet model (empty for a standalone
// Server), and what cap refused the request — the detail the gateway
// puts in its 429 bodies.
type QueueFullError = serve.QueueFullError

// ModelInfo describes one registered fleet model: routing name, the
// input shape every sample must match, and its resolved fair-share and
// admission configuration. See Fleet.Models.
type ModelInfo = fleet.ModelInfo

// FleetStats is a Fleet.Stats snapshot: one ModelStats per registered
// model plus fleet-wide admission/rejection aggregates.
type FleetStats = fleet.Stats

// ModelStats is one model's slice of FleetStats: the ServerStats
// counters (queue depth, batch-fill histogram, bounded-window p50/p99)
// plus the model's fair-share weight, resolved queue cap, and fleet-
// guard scrub/heal counters.
type ModelStats = fleet.ModelStats

// ScrubResult summarizes one fleet self-heal scrub cycle: whether the
// detection pass flagged errors (a heal ran) and whether the model
// verified clean afterwards. Returned by Fleet.ScrubOnce and counted
// into ModelStats.Heals.
type ScrubResult = fleet.ScrubResult

// ModelOption configures one model at Fleet.Register /
// Fleet.RegisterProtected time.
type ModelOption func(*fleet.ModelConfig)

// WithModelWeight sets the model's fair-share weight in the fleet's
// batch arbiter: under contention a model with weight w receives batch
// slots in proportion to w, so one hot model cannot starve the rest.
// Values <= 0 default to 1.
func WithModelWeight(w float64) ModelOption {
	return func(mc *fleet.ModelConfig) { mc.Weight = w }
}

// WithModelQueueCap overrides the fleet-wide WithQueueCap for one
// model: n > 0 caps its admission queue at n, n < 0 forces it
// unbounded. Zero keeps the fleet default.
func WithModelQueueCap(n int) ModelOption {
	return func(mc *fleet.ModelConfig) { mc.QueueCap = n }
}

// WithModelBackpressure switches the model's full-queue behaviour from
// fast-fail (ErrQueueFull) to blocking: admission waits for a queue
// slot until the request's context is done or the fleet closes. Use it
// for closed-loop callers that prefer latency over load shedding.
func WithModelBackpressure() ModelOption {
	return func(mc *fleet.ModelConfig) { mc.Block = true }
}

// Fleet serves several named models at once: each model has its own
// batch-coalescing admission queue (the Server machinery, per model),
// and one shared execution budget (WithWorkers) is arbitrated across
// them with weighted fair scheduling. Build one with NewFleet, add
// models with Register or RegisterProtected, and shut it down with
// Close. Answers are bit-identical to direct per-model Predict calls;
// it is safe for concurrent use by any number of client goroutines.
type Fleet struct {
	f  *fleet.Fleet
	rt *Runtime
}

// NewFleet builds an empty multi-model router from the runtime's
// serving policy: WithWorkers bounds how many coalesced batches run
// concurrently fleet-wide (the shared worker budget), WithBatchSize
// and WithMaxBatchDelay set each model's coalescing, WithQueueCap the
// default per-model admission cap, and WithDefaultDeadline the
// deadline applied to requests whose context has none.
func NewFleet(rt *Runtime) *Fleet {
	return &Fleet{
		f: fleet.New(fleet.Config{
			Workers:   rt.opts.Workers,
			BatchSize: rt.batch,
			MaxDelay:  rt.maxDelay,
			QueueCap:  rt.queueCap,
			Deadline:  rt.deadline,
		}),
		rt: rt,
	}
}

// Register adds a named, unprotected model to the fleet. An explicit
// worker policy (WithWorkers) is applied to the model's GEMM pools, as
// in Runtime.NewServer. Models may be registered while traffic flows.
func (fl *Fleet) Register(name string, m *Model, opts ...ModelOption) error {
	if m != nil && fl.rt.workersSet {
		m.SetWorkers(fl.rt.opts.Workers)
	}
	var mc fleet.ModelConfig
	for _, o := range opts {
		o(&mc)
	}
	return fl.f.Register(name, m, mc)
}

// RegisterProtected adds a MILR-protected model: its batches execute
// inside the protector's engine lock (Protector.Sync), so they
// serialize against that model's detect/recover cycles exactly like a
// guarded Server's — and the fleet guard (StartGuard) includes the
// model in its round-robin self-heal schedule. Other models' traffic
// is never blocked by this model's scrubs.
func (fl *Fleet) RegisterProtected(name string, pr *Protector, opts ...ModelOption) error {
	m := pr.Model()
	if fl.rt.workersSet {
		m.SetWorkers(fl.rt.opts.Workers)
	}
	var mc fleet.ModelConfig
	for _, o := range opts {
		o(&mc)
	}
	mc.Gate = pr.Sync
	mc.Scrub = protectorScrub(pr)
	return fl.f.Register(name, m, mc)
}

// protectorScrub adapts a Protector's self-heal cycle to the fleet's
// Scrub hook, folding the detection/recovery reports into a ScrubResult
// so the fleet can count heals without importing the engine. Shared by
// RegisterProtected and ReplaceProtected so a swapped-in protected
// engine scrubs exactly like a registered one.
func protectorScrub(pr *Protector) func(context.Context) (fleet.ScrubResult, error) {
	return func(ctx context.Context) (fleet.ScrubResult, error) {
		det, rec, err := pr.SelfHealContext(ctx)
		var res fleet.ScrubResult
		if det != nil && det.HasErrors() {
			res.ErrorsDetected = true
			res.Recovered = rec != nil && rec.AllRecovered()
		} else if err == nil {
			res.Recovered = true // clean pass: nothing flagged
		}
		return res, err
	}
}

// Unregister removes a named model from the fleet under live traffic
// with zero dropped requests: new admissions fail with ErrUnknownModel
// immediately (backpressure-blocked callers are woken to the same
// error), every already-admitted request still gets its answer while
// the model's queue drains, the fleet guard's rotation skips the model,
// and its fair-share weight leaves the arbiter once the drain ends.
// Unregister blocks until the drain completes or ctx is done; an early
// ctx return leaves the drain running in the background. The model's
// per-model stats series are dropped, but its totals keep counting in
// the fleet-wide aggregates, which stay monotonic.
func (fl *Fleet) Unregister(ctx context.Context, name string) error {
	return fl.f.Unregister(ctx, name)
}

// Replace swaps the named model's engine under live traffic — the
// rolling-upgrade primitive. From the moment it returns, new admissions
// and the requests already queued execute on m; a batch already in
// flight finishes on the old engine. No request is ever dropped or
// answered ErrFleetClosed across the cutover. The new engine's input
// shape must equal the old's, and opts are resolved exactly as in
// Register — a bare Replace resets weight and queue cap to their
// defaults, so pass the full desired configuration. The model keeps its
// name, queue, registration-order position, fair-share account and
// stats series.
func (fl *Fleet) Replace(ctx context.Context, name string, m *Model, opts ...ModelOption) error {
	if m != nil && fl.rt.workersSet {
		m.SetWorkers(fl.rt.opts.Workers)
	}
	var mc fleet.ModelConfig
	for _, o := range opts {
		o(&mc)
	}
	return fl.f.Replace(ctx, name, m, mc)
}

// ReplaceProtected swaps the named model's engine for a MILR-protected
// one, with Replace's zero-drop cutover semantics: the new engine's
// batches run inside pr's engine lock and the fleet guard scrubs it in
// the round-robin schedule, exactly as if it had been registered with
// RegisterProtected.
func (fl *Fleet) ReplaceProtected(ctx context.Context, name string, pr *Protector, opts ...ModelOption) error {
	m := pr.Model()
	if fl.rt.workersSet {
		m.SetWorkers(fl.rt.opts.Workers)
	}
	var mc fleet.ModelConfig
	for _, o := range opts {
		o(&mc)
	}
	mc.Gate = pr.Sync
	mc.Scrub = protectorScrub(pr)
	return fl.f.Replace(ctx, name, m, mc)
}

// Predict routes one sample to the named model and blocks until its
// coalesced batch has been served; the answer is bit-identical to a
// direct Model.Predict call. It returns ErrQueueFull when the model's
// queue is at cap (unless registered with backpressure), ErrFleetClosed
// after Close, and the context's error if ctx — or the fleet's default
// deadline (WithDefaultDeadline) — expires first.
func (fl *Fleet) Predict(ctx context.Context, model string, x *Tensor) (int, error) {
	return fl.f.Predict(ctx, model, x)
}

// PredictBatch enqueues every sample individually on the named model's
// queue — so a caller's samples coalesce with other callers' — and
// blocks until all are answered, returning classes in input order.
func (fl *Fleet) PredictBatch(ctx context.Context, model string, xs []*Tensor) ([]int, error) {
	return fl.f.PredictBatch(ctx, model, xs)
}

// StartGuard starts the fleet's self-heal scheduler: every interval it
// scrubs the next protected model (round-robin over every
// RegisterProtected model, including ones registered later), each
// scrub running under its own model's engine lock. The loop stops when
// ctx is done or the fleet closes; at most one guard runs per fleet.
func (fl *Fleet) StartGuard(ctx context.Context, interval time.Duration) error {
	return fl.f.StartGuard(ctx, interval)
}

// ScrubOnce runs exactly one self-heal scrub cycle synchronously: the
// next protected model in the same round-robin schedule StartGuard
// walks is scrubbed in the caller's goroutine, and its name plus the
// cycle's ScrubResult are returned. Deterministic drivers (the chaos
// soak harness) use it instead of StartGuard so scrub cadence is part
// of a replayable schedule rather than wall-clock timing.
func (fl *Fleet) ScrubOnce(ctx context.Context) (string, ScrubResult, error) {
	return fl.f.ScrubOnce(ctx)
}

// Stats returns a snapshot of every model's serving counters plus
// fleet-level aggregates. See FleetStats and ModelStats.
func (fl *Fleet) Stats() FleetStats {
	return fl.f.Stats()
}

// Models returns the registered models in registration order: name,
// input shape, fair-share weight, resolved queue cap, and whether the
// fleet guard self-heals the model. The gateway uses it to validate
// request payload shapes and to answer its model-index route.
func (fl *Fleet) Models() []ModelInfo {
	return fl.f.Models()
}

// Close stops admission fleet-wide, serves every request admitted
// before the call on every model, stops the guard loop, and returns
// once all dispatch and batch-execution goroutines have exited. Safe
// to call more than once.
func (fl *Fleet) Close() error {
	return fl.f.Close()
}

// WithQueueCap sets the default admission queue cap — the most
// requests that may wait in one admission queue — for both serving
// surfaces: every model queue of a Fleet built from this runtime, and
// the single queue of a Runtime.NewServer / NewGuardedServer. At cap,
// admission fast-fails with ErrQueueFull (or blocks, for fleet models
// registered with WithModelBackpressure) — the open-loop overload
// story. 0 (the default) means unbounded. Override per fleet model
// with WithModelQueueCap.
func WithQueueCap(n int) Option {
	return func(rt *Runtime) {
		if n < 0 {
			n = 0
		}
		rt.queueCap = n
	}
}

// WithDefaultDeadline sets the deadline a Fleet or a single Server
// applies to every Predict/PredictBatch call whose context has no
// deadline of its own, so an open-loop client can never wait
// unboundedly. Zero (the default) applies none; contexts that already
// carry a deadline are never altered.
func WithDefaultDeadline(d time.Duration) Option {
	return func(rt *Runtime) {
		if d < 0 {
			d = 0
		}
		rt.deadline = d
	}
}
